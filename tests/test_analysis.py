"""Tests for repro.analysis: the AST linter and the model-graph verifier."""

import importlib.util
import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.analysis import (
    check_dtype_consistency,
    check_grad_flow,
    check_registration,
    check_state_dict_round_trip,
    findings_to_json,
    has_errors,
    lint_file,
    lint_paths,
    lint_source,
    verify_module,
    walk_parameter_leaves,
)
from repro.nn.tensor import Tensor

REPO_ROOT = Path(__file__).resolve().parents[1]
FIXTURES = Path(__file__).resolve().parent / "lint_fixtures"


def _load_broken_modules():
    spec = importlib.util.spec_from_file_location(
        "lint_fixture_broken_modules", FIXTURES / "broken_modules.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


broken = _load_broken_modules()


def _probe(module):
    x = Tensor(np.ones((3, 4)))
    return module(x).sum()


# ----------------------------------------------------------------------
# Fixture corpus: each file fires exactly its rule
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "filename, rule, count",
    [
        ("ra101_orphan_param.py", "RA101", 1),
        ("ra102_param_in_set.py", "RA102", 1),
        ("ra201_dtype_literal.py", "RA201", 2),
        ("ra301_unguarded_fast_path.py", "RA301", 1),
        ("ra401_unguarded_obs.py", "RA401", 1),
        ("ra402_dynamic_metric_name.py", "RA402", 1),
        ("ra403_unsafe_labels.py", "RA403", 3),
        ("ra404_metric_naming.py", "RA404", 3),
        ("ra501_cache_invalidation.py", "RA501", 3),
        ("ra601_raw_multiprocessing.py", "RA601", 2),
        ("ra602_raw_memmap.py", "RA602", 2),
    ],
)
def test_fixture_fires_exactly_its_rule(filename, rule, count):
    findings = lint_file(FIXTURES / filename)
    assert [f.rule for f in findings] == [rule] * count, [
        f.format() for f in findings
    ]
    assert all(f.line > 0 for f in findings)


def test_suppressed_fixture_is_clean():
    assert lint_file(FIXTURES / "clean_suppressed.py") == []


def test_suppression_is_line_scoped():
    source = (
        "import numpy as np\n"
        "a = np.float64(1.0)  # repro-lint: disable=RA201\n"
        "b = np.float64(2.0)\n"
    )
    findings = lint_source(source, "blob.py", is_modeling=True)
    assert [(f.rule, f.line) for f in findings] == [("RA201", 3)]


def test_ra601_exempts_the_parallel_package():
    source = "import multiprocessing\nfrom multiprocessing import shared_memory\n"
    assert lint_source(source, "blob.py", is_parallel_package=True) == []
    findings = lint_source(source, "blob.py")
    assert [f.rule for f in findings] == ["RA601", "RA601"]


def test_ra602_exempts_the_store_package():
    source = (
        "import numpy as np\n"
        "from numpy.lib.format import open_memmap\n"
        "m = np.memmap('x.payload', dtype='<f4', mode='r')\n"
    )
    assert lint_source(source, "blob.py", is_store_package=True) == []
    findings = lint_source(source, "blob.py")
    assert [f.rule for f in findings] == ["RA602", "RA602"]


def test_syntax_error_reports_ra000():
    findings = lint_source("def broken(:\n", "blob.py")
    assert [f.rule for f in findings] == ["RA000"]


def test_repo_tree_is_clean():
    findings = lint_paths([REPO_ROOT / "src" / "repro"])
    assert not has_errors(findings), [f.format() for f in findings]


def test_findings_json_shape():
    findings = lint_file(FIXTURES / "ra201_dtype_literal.py")
    payload = json.loads(findings_to_json(findings))
    assert payload["count"] == 2
    assert payload["errors"] == 2
    entry = payload["findings"][0]
    assert entry["rule"] == "RA201"
    assert entry["path"].endswith("ra201_dtype_literal.py")


# ----------------------------------------------------------------------
# Model-graph verifier
# ----------------------------------------------------------------------
def test_verifier_flags_unregistered_param_in_set():
    rng = np.random.default_rng(0)
    module = broken.UnregisteredParamNet(rng)
    leaves = dict(walk_parameter_leaves(module))
    assert any(name.startswith("extras.") for name in leaves)
    findings = check_registration(module, name="unregistered")
    assert len(findings) == 1
    assert "extras" in findings[0].message
    assert "named_parameters" in findings[0].message


def test_verifier_flags_dead_param():
    rng = np.random.default_rng(0)
    module = broken.DeadParamNet(rng)
    findings = check_grad_flow(module, _probe, name="dead")
    assert len(findings) == 1
    assert "'dead'" in findings[0].message


def test_verifier_allow_no_grad_waives_dead_param():
    rng = np.random.default_rng(0)
    module = broken.DeadParamNet(rng)
    assert check_grad_flow(module, _probe, allow_no_grad=("dead",)) == []


def test_verifier_clean_on_nested_containers():
    rng = np.random.default_rng(0)
    module = broken.NestedContainerNet(rng)
    findings = verify_module(module, probe=_probe, name="nested")
    assert findings == [], [f.format() for f in findings]


def test_state_dict_round_trip_through_nested_containers():
    rng = np.random.default_rng(1)
    module = broken.NestedContainerNet(rng)
    state = module.state_dict()
    # Dotted names traverse lists-of-lists and dicts.
    assert "blocks.0.0.weight" in state
    assert "blocks.1.1.bias" in state
    assert "heads.a.weight" in state
    assert "heads.b.0.weight" in state
    fresh = broken.NestedContainerNet(np.random.default_rng(2))
    before = fresh.heads["a"].weight.data.copy()
    assert not np.array_equal(before, module.heads["a"].weight.data)
    fresh.load_state_dict(state)
    for key, param in fresh.named_parameters():
        assert np.array_equal(param.data, state[key])
    assert check_state_dict_round_trip(module) == []


def test_dtype_consistency_on_nested_containers():
    rng = np.random.default_rng(3)
    module = broken.NestedContainerNet(rng)
    assert check_dtype_consistency(module) == []


# ----------------------------------------------------------------------
# CLI exit codes
# ----------------------------------------------------------------------
def _run_cli(*args):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", "lint", *args],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO_ROOT,
    )


def test_cli_exit_nonzero_on_fixture_corpus():
    result = _run_cli(str(FIXTURES / "ra101_orphan_param.py"), "--json")
    assert result.returncode == 1
    payload = json.loads(result.stdout)
    assert payload["errors"] == 1
    assert payload["findings"][0]["rule"] == "RA101"


def test_cli_exit_zero_on_clean_tree():
    result = _run_cli("src/repro")
    assert result.returncode == 0, result.stdout + result.stderr


def test_cli_warn_only_exit_zero():
    result = _run_cli(str(FIXTURES / "ra201_dtype_literal.py"), "--warn-only")
    assert result.returncode == 0, result.stdout + result.stderr
