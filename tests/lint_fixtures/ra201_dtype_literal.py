"""Lint fixture: RA201 dtype-literal (two findings)."""

import numpy as np


def project(x):
    return np.asarray(x, dtype=np.float64)


def half(x):
    return x.astype(dtype="float32")
