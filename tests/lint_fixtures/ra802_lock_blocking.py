"""RA802 fixture: blocking queue.get() while holding a lock."""

import threading

_lock = threading.Lock()


def drain(task_queue, results):
    with _lock:
        item = task_queue.get()
        results.append(item)
