"""Runtime fixtures for the model-graph verifier tests.

Two of these are intentionally broken — :class:`UnregisteredParamNet`
hides a parameter in a set (invisible to ``_named_children``) and
:class:`DeadParamNet` registers a parameter its forward never touches.
``tests/test_analysis.py`` asserts the verifier flags both, and that the
well-formed :class:`NestedContainerNet` passes every check.
"""

import numpy as np

from repro.nn.layers import Linear
from repro.nn.module import Module, Parameter


class UnregisteredParamNet(Module):
    def __init__(self, rng):
        super().__init__()
        self.proj = Linear(4, 4, rng)
        # BUG (intentional): sets are invisible to _named_children.
        self.extras = {Parameter(np.ones((4, 4)))}

    def forward(self, x):
        return self.proj(x)


class DeadParamNet(Module):
    def __init__(self, rng):
        super().__init__()
        self.proj = Linear(4, 4, rng)
        # BUG (intentional): registered but never used in forward.
        self.dead = Parameter(np.ones(4))

    def forward(self, x):
        return self.proj(x)


class NestedContainerNet(Module):
    """Well-formed: parameters nested in lists-of-lists and dicts."""

    def __init__(self, rng):
        super().__init__()
        self.blocks = [
            [Linear(4, 4, rng)],
            [Linear(4, 4, rng), Linear(4, 4, rng)],
        ]
        self.heads = {"a": Linear(4, 2, rng), "b": [Linear(4, 2, rng)]}

    def forward(self, x):
        for row in self.blocks:
            for block in row:
                x = block(x)
        return self.heads["a"](x) + self.heads["b"][0](x)
