"""Fixture: direct memory mapping outside repro.store fires RA602 twice."""

import numpy as np
from numpy import memmap  # noqa: F401  (finding 1: import)


def load_payload(path):
    return np.memmap(path, dtype="<f4", mode="r")  # finding 2: attribute
