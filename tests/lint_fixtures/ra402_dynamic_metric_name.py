"""Lint fixture: RA402 dynamic-metric-name (guarded, so no RA401)."""

import repro.obs as obs


def run(name):
    if obs.enabled:
        obs.metrics.counter(f"infer.{name}").inc()
