"""Lint fixture: RA601 raw-multiprocessing."""

import multiprocessing
from multiprocessing import shared_memory


def fan_out(tasks):
    with multiprocessing.Pool(4) as pool:
        return pool.map(len, tasks)


def scratch_block():
    return shared_memory.SharedMemory(create=True, size=16)
