"""Lint fixture: RA102 param-in-set (never imported, AST-only)."""


class SetNet(Module):  # noqa: F821
    def __init__(self, rng):
        super().__init__()
        # Assigned to self, but _named_children does not traverse sets.
        self.blocks = {Linear(4, 4, rng)}  # noqa: F821
