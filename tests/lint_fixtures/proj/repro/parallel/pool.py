"""RA801/RA803 fixtures: pre-fork thread start, worker global write."""

import threading

_SEEN = None


class AnnotatorPool:
    def _build_spec(self):
        return _start_heartbeat()

    def _spawn_worker(self):
        return None


def _start_heartbeat():
    thread = threading.Thread(target=_beat)
    thread.start()
    return thread


def _beat():
    return None


def _worker_main(spec):
    global _SEEN
    _SEEN = spec
    return spec
