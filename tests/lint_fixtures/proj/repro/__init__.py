"""Fixture package tree for the whole-program pass (RA61x/RA80x).

Each module below violates exactly one project rule; the tests run
``analyze_project`` over this tree and assert the expected findings.
"""
