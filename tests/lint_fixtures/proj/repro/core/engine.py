"""RA613 fixture: a contract-confined external import outside its home."""

import multiprocessing  # repro-lint: disable=RA601 exercising the contract rule


def _fan_out():
    return multiprocessing.cpu_count()
