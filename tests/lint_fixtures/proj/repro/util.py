"""RA612 fixture: a public symbol nothing imports or references."""


def unused_helper():
    return 42
