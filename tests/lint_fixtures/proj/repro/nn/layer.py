"""RA610 fixture: a library layer importing the composition root."""

import repro.cli


def _call_cli():
    return repro.cli.main()
