"""Fixture composition root (the forbidden RA610 import target)."""


def main():
    return 0
