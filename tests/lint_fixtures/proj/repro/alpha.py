"""RA611 fixture: one half of a top-level import cycle."""

import repro.beta


def _ping():
    return repro.beta.__name__
