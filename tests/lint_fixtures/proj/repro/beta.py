"""RA611 fixture: the other half of the cycle."""

import repro.alpha


def _pong():
    return repro.alpha.__name__
