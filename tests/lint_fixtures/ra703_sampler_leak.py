"""RA703 fixture: resource sampler started and never stopped."""


class ResourceSampler:
    def __init__(self, interval):
        self.interval = interval

    def start(self):
        pass

    def stop(self):
        pass


def sample_forever(interval):
    sampler = ResourceSampler(interval)
    sampler.start()
