"""Lint fixture: RA501 cache-invalidation (three findings: no train /
load_state_dict / to_dtype override at all)."""


class CachedNet(Module):  # noqa: F821
    def __init__(self, rng):
        super().__init__()
        self.proj = Linear(4, 4, rng)  # noqa: F821
        self._payload_cache = None

    def forward(self, x):
        return self.proj(x)
