"""RA706 fixture: bare open() whose close is unreachable on exceptions."""

import json


def read_config(path):
    handle = open(path)
    payload = json.load(handle)  # a decode error here leaks the handle
    handle.close()
    return payload
