"""RA702 fixture: telemetry server started with no reachable stop."""


class TelemetryServer:
    def __init__(self, port):
        self.port = port

    def start(self):
        return self

    def stop(self):
        pass


def serve(port):
    server = TelemetryServer(port)
    server.start()
    return server.port
