"""RA704 fixture: health-probe registration with no paired unregister."""


def register_probe(exporter, probe):
    exporter.health.register("store", probe)
    return probe
