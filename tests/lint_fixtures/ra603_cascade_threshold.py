"""Fixture: cascade threshold literals outside repro.cascade fire RA603.

Four findings: a keyword literal, an assignment, a comparison, and a
function default. ``min_prior_mass`` is a different knob and must NOT
match (exact-name rule).
"""


def build_policy(policy_cls):
    return policy_cls(margin=0.4)  # finding 1: keyword literal


cascade_prior_mass = 0.8  # finding 2: assignment


def is_confident(margin):
    return margin >= 0.25  # finding 3: comparison


def tune(prior_mass=0.7):  # finding 4: parameter default
    return prior_mass


def detector_knob(min_prior_mass=0.5):  # unrelated knob: no finding
    return min_prior_mass
