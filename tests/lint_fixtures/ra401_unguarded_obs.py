"""Lint fixture: RA401 unguarded-obs."""

import repro.obs as obs


def run(batch):
    obs.metrics.counter("infer.batches").inc()
    return batch
