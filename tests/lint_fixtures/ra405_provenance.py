"""Lint fixture: RA405 provenance-confinement."""

import repro.obs as obs
from repro.obs import provenance
from repro.obs.provenance import DecisionRecord


def rogue_construction(sentence_id):
    return DecisionRecord(sentence_id=sentence_id, mention_index=0)


def unguarded_capture(sentence_id):
    provenance.record_decision(sentence_id, 0, surface="x")


def unguarded_alias_capture(sentence_id):
    provenance.record_prediction(sentence_id, 0, tier="model")


def guarded_capture(sentence_id):
    capturing = obs.enabled and provenance.active
    if capturing:
        provenance.record_decision(sentence_id, 0, surface="x")
