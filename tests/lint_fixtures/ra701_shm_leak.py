"""RA701 fixture: shared-memory segment leaked on the exception edge."""

from multiprocessing import shared_memory


def _fill(block):
    block.buf[:4] = b"demo"


def leak_segment(total):
    block = shared_memory.SharedMemory(create=True, size=total)
    _fill(block)  # an exception here leaks the segment
    block.close()
    block.unlink()
