"""RA705 fixture: memmap window with no owner and no close/detach."""

import numpy as np


def _compute(window):
    return window.mean(axis=1)


def row_means(path, shape):
    window = np.memmap(path, dtype="<f4", mode="r", shape=shape)
    means = _compute(window)
    total = means.sum()
    return total
