"""Lint fixture: every violation suppressed -> zero findings."""

import numpy as np

import repro.obs as obs


class QuietNet(Module):  # noqa: F821
    def __init__(self, rng):
        super().__init__()
        probe = Linear(4, 4, rng)  # noqa: F821  # repro-lint: disable=RA101
        self.scale = np.float64(2.0)  # repro-lint: disable=RA201
        raw = np.float32  # bare disable suppresses all  # repro-lint: disable


def emit(batch):
    obs.metrics.counter("demo.calls").inc()  # repro-lint: disable=RA401
    return batch
