"""Lint fixture: RA403 unsafe-metric-label (guarded, static names)."""

import repro.obs as obs


def emit(bucket, labels):
    if obs.enabled:
        # ** expansion hides the label names from the linter.
        obs.metrics.gauge("eval.slice_f1", **labels).set(1.0)
        # Constant value with a space: outside the metric-key alphabet.
        obs.metrics.gauge("eval.slice_f1", slice="head mentions").set(1.0)
        # Label value built per call.
        obs.metrics.counter("eval.slices", slice=f"bucket-{bucket}").inc()
        # Clean: fixed-vocabulary variable and key-safe constant.
        obs.metrics.gauge("eval.slice_f1", slice=bucket).set(1.0)
        obs.metrics.gauge("eval.slice_f1", slice="head").set(1.0)
        # Clean: reservoir_size is a real parameter, not a label.
        obs.metrics.histogram("infer.batch_seconds", reservoir_size=64).observe(0.1)
