"""Lint fixture: RA404 metric-naming (guarded, static, key-safe)."""

import repro.obs as obs


def emit(elapsed, resident):
    if obs.enabled:
        # Duration histogram without the `_seconds` suffix.
        obs.metrics.histogram("infer.batch_latency").observe(elapsed)
        # Duration histogram in the wrong unit/suffix.
        obs.metrics.histogram("pool.chunk_ms").observe(elapsed * 1e3)
        # Byte gauge recorded in MiB.
        obs.metrics.gauge("store.resident_mb").set(resident / 2**20)
        # Clean: unit-suffixed duration and byte names.
        obs.metrics.histogram("infer.batch_seconds").observe(elapsed)
        obs.metrics.gauge("store.resident_bytes").set(resident)
        # Clean: unitless instruments are out of scope.
        obs.metrics.gauge("pool.queue_depth").set(3)
        obs.metrics.counter("infer.batches").inc()
