"""Lint fixture: RA101 orphan-param.

Never imported — the linter analyzes this file as source only, so the
bare ``Module``/``Linear`` names need no imports.
"""


class OrphanNet(Module):  # noqa: F821
    def __init__(self, rng):
        super().__init__()
        hidden = Linear(4, 4, rng)  # noqa: F821 — never reaches self.*
        self.scale = 2.0
