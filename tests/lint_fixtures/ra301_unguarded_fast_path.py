"""Lint fixture: RA301 unguarded-fast-path (never imported, AST-only)."""


class FusedNet(Module):  # noqa: F821
    def forward(self, x):
        # Raw-buffer fast path with no is_grad_enabled()/training check.
        raw = x.data
        return raw @ raw
