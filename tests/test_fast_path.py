"""Tests for the inference fast path: float32 compute policy, static
payload caching, batched annotation, and prediction assembly."""

import numpy as np
import pytest

from repro.core import (
    BootlegAnnotator,
    BootlegConfig,
    BootlegModel,
    TrainConfig,
    Trainer,
    predict,
)
from repro.corpus import (
    CollateBuffers,
    CorpusConfig,
    EntityCounts,
    NedDataset,
    build_vocabulary,
    detokenize,
    generate_corpus,
)
from repro.errors import ConfigError
from repro.kb import WorldConfig, generate_world
from repro.kb.aliases import normalize_alias
from repro.nn import compute_dtype, no_grad
from repro.nn.optim import Adam, clip_grad_norm


@pytest.fixture(scope="module")
def world():
    return generate_world(WorldConfig(num_entities=120, seed=7))


@pytest.fixture(scope="module")
def corpus(world):
    return generate_corpus(world, CorpusConfig(num_pages=30, seed=7))


@pytest.fixture(scope="module")
def vocab(corpus):
    return build_vocabulary(corpus)


@pytest.fixture(scope="module")
def dataset(world, corpus, vocab):
    return NedDataset(
        corpus, "train", vocab, world.candidate_map, 4, kgs=[world.kg]
    )


def make_model(world, corpus, vocab):
    counts = EntityCounts.from_corpus(corpus, world.num_entities)
    return BootlegModel(
        BootlegConfig(num_candidates=4, dropout=0.0),
        world.kb,
        vocab,
        entity_counts=counts.counts,
    )


@pytest.fixture(scope="module")
def model(world, corpus, vocab):
    m = make_model(world, corpus, vocab)
    m.eval()
    return m


@pytest.fixture(scope="module")
def batch(dataset):
    return dataset.collate(dataset.encoded[:16])


def masked_argmax(scores, candidate_ids):
    return np.argmax(np.where(candidate_ids >= 0, scores, -np.inf), axis=-1)


class TestFloat32Policy:
    def test_f32_model_agrees_with_f64(self, world, corpus, vocab, model, batch):
        model32 = make_model(world, corpus, vocab)
        model32.load_state_dict(model.state_dict())
        model32.half_precision()
        model32.eval()
        with no_grad():
            scores64 = model(batch).scores.data
        with no_grad(), compute_dtype(np.float32):
            out32 = model32(batch).scores
        assert out32.data.dtype == np.float32
        valid = batch.candidate_ids >= 0
        np.testing.assert_allclose(
            out32.data[valid], scores64[valid], atol=1e-4
        )
        np.testing.assert_array_equal(
            masked_argmax(out32.data, batch.candidate_ids),
            masked_argmax(scores64, batch.candidate_ids),
        )

    def test_half_precision_casts_parameters(self, world, corpus, vocab):
        m = make_model(world, corpus, vocab)
        m.half_precision()
        assert all(p.data.dtype == np.float32 for p in m.parameters())
        m.full_precision()
        assert all(p.data.dtype == np.float64 for p in m.parameters())

    def test_state_dict_round_trips_across_dtypes(self, world, corpus, vocab):
        original = make_model(world, corpus, vocab)
        reference = original.state_dict()
        half = make_model(world, corpus, vocab)
        half.load_state_dict(reference)
        half.half_precision()
        # An f64 model loading an f32 checkpoint keeps f64 storage and
        # recovers the weights to f32 precision.
        restored = make_model(world, corpus, vocab)
        restored.load_state_dict(half.state_dict())
        for name, value in restored.state_dict().items():
            assert value.dtype == np.float64
            np.testing.assert_allclose(
                value, reference[name], rtol=1e-6, atol=1e-6
            )
        # And an f32 model loading an f64 checkpoint stays f32.
        half.load_state_dict(reference)
        assert all(p.data.dtype == np.float32 for p in half.parameters())

    def test_to_dtype_rejects_non_float(self, model):
        from repro.errors import SerializationError

        with pytest.raises(SerializationError):
            model.to_dtype(np.int64)


class TestStaticPayloadCache:
    def test_cached_matches_uncached_scores(self, model, batch):
        model.embedder.invalidate_static_cache()
        with no_grad():
            model.payload_cache_enabled = False
            slow = model(batch).scores.data
            model.payload_cache_enabled = True
            fast = model(batch).scores.data
        assert model.embedder.static_cache_ready
        valid = batch.candidate_ids >= 0
        np.testing.assert_allclose(fast[valid], slow[valid], atol=1e-10)

    def test_cache_skipped_while_training(self, model, batch):
        model.embedder.invalidate_static_cache()
        model.train()
        output = model(batch)
        assert not model.embedder.static_cache_ready
        model.loss(batch, output).backward()
        model.eval()

    def test_load_state_dict_invalidates(self, world, corpus, vocab, batch):
        m = make_model(world, corpus, vocab)
        m.eval()
        with no_grad():
            m(batch)
        assert m.embedder.static_cache_ready
        perturbed = {
            name: value + 0.01 for name, value in m.state_dict().items()
        }
        m.load_state_dict(perturbed)
        assert not m.embedder.static_cache_ready
        # Predictions after the load must match a cache-free forward.
        with no_grad():
            fast = m(batch).scores.data
            m.payload_cache_enabled = False
            slow = m(batch).scores.data
            m.payload_cache_enabled = True
        valid = batch.candidate_ids >= 0
        np.testing.assert_allclose(fast[valid], slow[valid], atol=1e-10)

    def test_training_step_invalidates(self, world, corpus, vocab, batch):
        m = make_model(world, corpus, vocab)
        m.eval()
        with no_grad():
            before = m(batch).scores.data.copy()
        assert m.embedder.static_cache_ready
        optimizer = Adam(m.parameters(), lr=1e-2)
        m.train()
        assert not m.embedder.static_cache_ready
        output = m(batch)
        m.loss(batch, output).backward()
        clip_grad_norm(optimizer.parameters, 5.0)
        optimizer.step()
        m.eval()
        with no_grad():
            fast = m(batch).scores.data
            m.payload_cache_enabled = False
            slow = m(batch).scores.data
            m.payload_cache_enabled = True
        valid = batch.candidate_ids >= 0
        # The step moved the weights, and the rebuilt cache reflects it.
        assert np.abs(fast - before)[valid].max() > 1e-6
        np.testing.assert_allclose(fast[valid], slow[valid], atol=1e-10)

    def test_cache_rebuilt_per_compute_dtype(self, world, corpus, vocab, batch):
        m = make_model(world, corpus, vocab)
        m.half_precision()
        m.eval()
        with no_grad(), compute_dtype(np.float32):
            m(batch)
        assert m.embedder._static_cache.dtype == np.float32


class TestPredictAssembly:
    def test_record_arrays_are_independent(self, model, dataset):
        records = predict(model, dataset, batch_size=8)
        assert len(records) > 2
        first, second = records[0], records[1]
        original = second.candidate_scores.copy()
        first.candidate_scores[...] = -123.0
        first.candidate_ids[...] = -9
        np.testing.assert_array_equal(second.candidate_scores, original)
        assert second.candidate_ids.min() >= -1

    def test_records_survive_buffer_reuse(self, model, dataset):
        buffers = CollateBuffers()
        from repro.core.trainer import predict_batches

        records = predict_batches(
            model, dataset.batches(4, buffers=buffers)
        )
        reference = predict(model, dataset, batch_size=4)
        assert len(records) == len(reference)
        for got, want in zip(records, reference):
            assert got.sentence_id == want.sentence_id
            assert got.predicted_entity_id == want.predicted_entity_id
            np.testing.assert_array_equal(got.candidate_ids, want.candidate_ids)
            np.testing.assert_allclose(
                got.candidate_scores, want.candidate_scores
            )

    def test_eval_accuracy_restores_model_mode(self, world, corpus, vocab, dataset):
        m = make_model(world, corpus, vocab)
        trainer = Trainer(
            m, dataset, TrainConfig(epochs=0), eval_dataset=dataset
        )
        m.eval()
        trainer._eval_accuracy()
        assert not m.training
        m.train()
        trainer._eval_accuracy()
        assert m.training
        m.eval()


class TestCollateBuffers:
    def test_reuses_matching_allocation(self):
        buffers = CollateBuffers()
        a = buffers.take("x", (4, 8), np.int64, fill=0)
        b = buffers.take("x", (4, 8), np.int64, fill=7)
        assert a is b
        assert (b == 7).all()

    def test_reallocates_on_shape_or_dtype_change(self):
        buffers = CollateBuffers()
        a = buffers.take("x", (4, 8), np.int64, fill=0)
        b = buffers.take("x", (2, 8), np.int64, fill=0)
        assert a is not b
        c = buffers.take("x", (2, 8), np.float64, fill=0.0)
        assert b is not c


class TestBatchedAnnotator:
    @pytest.fixture(scope="class")
    def annotator(self, world, corpus, vocab, model):
        return BootlegAnnotator(
            model,
            vocab,
            world.candidate_map,
            world.kb,
            kgs=[world.kg],
            num_candidates=4,
        )

    @pytest.fixture(scope="class")
    def texts(self, corpus):
        sentences = corpus.sentences("test")[:8]
        return [detokenize(list(s.tokens)) for s in sentences]

    def test_batch_matches_sequential(self, annotator, texts):
        batched = annotator.annotate_batch(texts)
        sequential = [annotator.annotate(text) for text in texts]
        assert len(batched) == len(sequential)
        for got, want in zip(batched, sequential):
            assert len(got) == len(want)
            for g, w in zip(got, want):
                assert (g.start, g.end) == (w.start, w.end)
                assert g.surface == w.surface
                assert g.entity_id == w.entity_id
                assert g.score == pytest.approx(w.score)
                # Scores can differ by an ulp across batch shapes (BLAS
                # blocking); ranking and titles must match exactly.
                assert [c[0] for c in g.candidates] == [c[0] for c in w.candidates]
                assert [c[1] for c in g.candidates] == pytest.approx(
                    [c[1] for c in w.candidates]
                )

    def test_detection_matches_string_join_reference(self, annotator, corpus):
        def reference_detect(tokens):
            # The pre-index implementation: probe every span, longest
            # first, via candidate-map ambiguity on the joined string.
            spans = []
            position = 0
            while position < len(tokens):
                matched = 0
                for length in range(
                    min(annotator.max_alias_tokens, len(tokens) - position), 0, -1
                ):
                    alias = normalize_alias(
                        " ".join(tokens[position : position + length])
                    )
                    if annotator.candidate_map.ambiguity(alias) > 0:
                        matched = position + length
                        break
                if matched:
                    spans.append((position, matched))
                    position = matched
                else:
                    position += 1
            return spans

        for sentence in corpus.sentences()[:40]:
            tokens = list(sentence.tokens)
            assert annotator.detect_mentions(tokens) == reference_detect(tokens)

    def test_empty_text_rejected(self, annotator):
        with pytest.raises(ConfigError):
            annotator.annotate_batch(["good text", "   "])

    def test_mismatched_spans_rejected(self, annotator):
        with pytest.raises(ConfigError):
            annotator.annotate_batch(["a b"], mention_spans=[None, None])

    def test_doc_without_mentions_gets_empty_list(self, annotator, texts):
        results = annotator.annotate_batch(
            [texts[0], "zzz qqq xxx"], mention_spans=[None, []]
        )
        assert results[1] == []
        assert len(results[0]) == len(annotator.annotate(texts[0]))
