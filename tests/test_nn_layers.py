"""Tests for layers, module system, attention, transformer, optimizers, losses."""

import numpy as np
import pytest

from repro.errors import ConfigError, SerializationError, ShapeError
from repro.nn import (
    MLP,
    Adam,
    AdditiveAttention,
    Dropout,
    Embedding,
    LayerNorm,
    Linear,
    Module,
    MultiHeadAttention,
    Parameter,
    SGD,
    Sequential,
    Tensor,
    TransformerEncoder,
    accuracy,
    clip_grad_norm,
    cross_entropy,
    load_module,
    save_module,
    sinusoidal_position_encoding,
)
from repro.nn.loss import IGNORE_INDEX


def make_rng():
    return np.random.default_rng(42)


class TestLinear:
    def test_shapes(self):
        layer = Linear(4, 7, make_rng())
        out = layer(Tensor(np.ones((3, 4))))
        assert out.shape == (3, 7)

    def test_batched_shapes(self):
        layer = Linear(4, 7, make_rng())
        out = layer(Tensor(np.ones((2, 3, 4))))
        assert out.shape == (2, 3, 7)

    def test_wrong_dim_raises(self):
        layer = Linear(4, 7, make_rng())
        with pytest.raises(ShapeError):
            layer(Tensor(np.ones((3, 5))))

    def test_no_bias(self):
        layer = Linear(4, 7, make_rng(), bias=False)
        assert layer.bias is None
        out = layer(Tensor(np.zeros((1, 4))))
        np.testing.assert_allclose(out.data, 0.0)

    def test_learns_identity(self):
        rng = make_rng()
        layer = Linear(3, 3, rng)
        opt = Adam(layer.parameters(), lr=0.05)
        x = rng.normal(size=(64, 3))
        for _ in range(200):
            opt.zero_grad()
            out = layer(Tensor(x))
            loss = ((out - Tensor(x)) ** 2).mean()
            loss.backward()
            opt.step()
        assert loss.item() < 1e-3

    def test_invalid_dims(self):
        with pytest.raises(ConfigError):
            Linear(0, 3, make_rng())


class TestEmbedding:
    def test_lookup_shape(self):
        emb = Embedding(10, 5, make_rng())
        out = emb(np.array([[1, 2], [3, 4]]))
        assert out.shape == (2, 2, 5)

    def test_out_of_range(self):
        emb = Embedding(10, 5, make_rng())
        with pytest.raises(ShapeError):
            emb(np.array([10]))
        with pytest.raises(ShapeError):
            emb(np.array([-1]))

    def test_uniform_init_identical_rows(self):
        emb = Embedding(6, 4, make_rng(), uniform_init=True)
        rows = emb.weight.data
        for i in range(1, 6):
            np.testing.assert_allclose(rows[i], rows[0])

    def test_gradients_flow_to_selected_rows_only(self):
        emb = Embedding(5, 3, make_rng())
        out = emb(np.array([1, 3]))
        out.sum().backward()
        grad = emb.weight.grad
        assert grad[1].sum() != 0 and grad[3].sum() != 0
        np.testing.assert_allclose(grad[0], 0)
        np.testing.assert_allclose(grad[2], 0)
        np.testing.assert_allclose(grad[4], 0)


class TestLayerNorm:
    def test_normalizes(self):
        ln = LayerNorm(8)
        x = Tensor(np.random.default_rng(0).normal(3.0, 5.0, size=(4, 8)))
        out = ln(x)
        np.testing.assert_allclose(out.data.mean(axis=-1), 0.0, atol=1e-9)
        np.testing.assert_allclose(out.data.std(axis=-1), 1.0, atol=1e-3)

    def test_wrong_dim(self):
        with pytest.raises(ShapeError):
            LayerNorm(8)(Tensor(np.ones((2, 4))))

    def test_gradcheck(self):
        ln = LayerNorm(6)
        x = Tensor(np.random.default_rng(1).normal(size=(3, 6)), requires_grad=True)
        loss = (ln(x) ** 2).sum()
        loss.backward()
        assert x.grad is not None and np.isfinite(x.grad).all()


class TestDropout:
    def test_eval_is_identity(self):
        drop = Dropout(0.5, make_rng())
        drop.eval()
        x = Tensor(np.ones((10, 10)))
        np.testing.assert_allclose(drop(x).data, 1.0)

    def test_training_masks_and_scales(self):
        drop = Dropout(0.5, make_rng())
        x = Tensor(np.ones((100, 100)))
        out = drop(x).data
        kept = out[out != 0]
        np.testing.assert_allclose(kept, 2.0)
        assert 0.4 < (out != 0).mean() < 0.6

    def test_zero_p_identity(self):
        drop = Dropout(0.0, make_rng())
        x = Tensor(np.ones((5, 5)))
        np.testing.assert_allclose(drop(x).data, 1.0)

    def test_invalid_p(self):
        with pytest.raises(ConfigError):
            Dropout(1.0, make_rng())
        with pytest.raises(ConfigError):
            Dropout(-0.1, make_rng())


class TestMLP:
    def test_shapes(self):
        mlp = MLP([4, 8, 2], make_rng())
        out = mlp(Tensor(np.ones((3, 4))))
        assert out.shape == (3, 2)

    def test_needs_two_dims(self):
        with pytest.raises(ConfigError):
            MLP([4], make_rng())

    def test_unknown_activation(self):
        with pytest.raises(ConfigError):
            MLP([4, 2], make_rng(), activation="swish")

    def test_learns_xor(self):
        rng = make_rng()
        mlp = MLP([2, 16, 1], rng, activation="tanh")
        x = np.array([[0, 0], [0, 1], [1, 0], [1, 1]], dtype=float)
        y = np.array([[0.0], [1.0], [1.0], [0.0]])
        opt = Adam(mlp.parameters(), lr=0.02)
        for _ in range(400):
            opt.zero_grad()
            loss = ((mlp(Tensor(x)) - Tensor(y)) ** 2).mean()
            loss.backward()
            opt.step()
        assert loss.item() < 0.01


class TestModuleSystem:
    def test_named_parameters_nested(self):
        class Inner(Module):
            def __init__(self):
                super().__init__()
                self.w = Parameter(np.ones(2))

        class Outer(Module):
            def __init__(self):
                super().__init__()
                self.inner = Inner()
                self.layers = [Linear(2, 2, make_rng())]
                self.table = {"a": Inner()}

        outer = Outer()
        names = {name for name, _ in outer.named_parameters()}
        assert "inner.w" in names
        assert "layers.0.weight" in names
        assert "table.a.w" in names

    def test_train_eval_propagates(self):
        seq = Sequential(Dropout(0.5, make_rng()), Linear(2, 2, make_rng()))
        seq.eval()
        assert all(not m.training for m in seq.modules())
        seq.train()
        assert all(m.training for m in seq.modules())

    def test_state_dict_roundtrip(self):
        a = MLP([3, 4, 2], make_rng())
        b = MLP([3, 4, 2], np.random.default_rng(7))
        b.load_state_dict(a.state_dict())
        x = Tensor(np.ones((2, 3)))
        np.testing.assert_allclose(a(x).data, b(x).data)

    def test_state_dict_mismatch(self):
        a = MLP([3, 4, 2], make_rng())
        b = MLP([3, 5, 2], make_rng())
        with pytest.raises(SerializationError):
            b.load_state_dict(a.state_dict())

    def test_save_load_module(self, tmp_path):
        a = MLP([3, 4, 2], make_rng())
        path = tmp_path / "model.npz"
        save_module(a, path, metadata={"epoch": 3})
        b = MLP([3, 4, 2], np.random.default_rng(9))
        meta = load_module(b, path)
        assert meta == {"epoch": 3}
        x = Tensor(np.ones((2, 3)))
        np.testing.assert_allclose(a(x).data, b(x).data)

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(SerializationError):
            load_module(MLP([2, 2], make_rng()), tmp_path / "nope.npz")

    def test_zero_grad(self):
        mlp = MLP([2, 2], make_rng())
        loss = (mlp(Tensor(np.ones((1, 2)))) ** 2).sum()
        loss.backward()
        assert any(p.grad is not None for p in mlp.parameters())
        mlp.zero_grad()
        assert all(p.grad is None for p in mlp.parameters())


class TestAttention:
    def test_mha_self_attention_shape(self):
        mha = MultiHeadAttention(16, 4, make_rng(), dropout=0.0)
        x = Tensor(np.random.default_rng(0).normal(size=(2, 5, 16)))
        out = mha(x)
        assert out.shape == (2, 5, 16)

    def test_mha_cross_attention_shape(self):
        mha = MultiHeadAttention(16, 4, make_rng(), dropout=0.0)
        q = Tensor(np.random.default_rng(0).normal(size=(2, 3, 16)))
        ctx = Tensor(np.random.default_rng(1).normal(size=(2, 7, 16)))
        out = mha(q, ctx)
        assert out.shape == (2, 3, 16)

    def test_mha_mask_blocks_positions(self):
        mha = MultiHeadAttention(8, 2, make_rng(), dropout=0.0)
        mha.eval()
        rng = np.random.default_rng(3)
        q = Tensor(rng.normal(size=(1, 2, 8)))
        ctx_a = rng.normal(size=(1, 4, 8))
        ctx_b = ctx_a.copy()
        ctx_b[0, 3] = 100.0  # masked position differs wildly
        mask = np.array([[False, False, False, True]])
        out_a = mha(q, Tensor(ctx_a), key_mask=mask)
        out_b = mha(q, Tensor(ctx_b), key_mask=mask)
        np.testing.assert_allclose(out_a.data, out_b.data, atol=1e-10)

    def test_mha_dim_mismatch(self):
        with pytest.raises(ConfigError):
            MultiHeadAttention(10, 3, make_rng())

    def test_mha_wrong_input_dim(self):
        mha = MultiHeadAttention(8, 2, make_rng())
        with pytest.raises(ShapeError):
            mha(Tensor(np.ones((1, 2, 6))))

    def test_additive_attention_pools(self):
        attn = AdditiveAttention(6, make_rng())
        items = Tensor(np.random.default_rng(0).normal(size=(3, 4, 6)))
        out = attn(items)
        assert out.shape == (3, 6)

    def test_additive_attention_ignores_padding(self):
        attn = AdditiveAttention(6, make_rng())
        rng = np.random.default_rng(1)
        items_a = rng.normal(size=(1, 3, 6))
        items_b = items_a.copy()
        items_b[0, 2] = 99.0
        mask = np.array([[False, False, True]])
        out_a = attn(Tensor(items_a), pad_mask=mask)
        out_b = attn(Tensor(items_b), pad_mask=mask)
        np.testing.assert_allclose(out_a.data, out_b.data, atol=1e-10)

    def test_additive_attention_wrong_dim(self):
        with pytest.raises(ShapeError):
            AdditiveAttention(6, make_rng())(Tensor(np.ones((2, 3, 5))))


class TestTransformer:
    def test_encoder_stack_shape(self):
        enc = TransformerEncoder(16, 4, 2, make_rng(), dropout=0.0)
        x = Tensor(np.random.default_rng(0).normal(size=(2, 6, 16)))
        assert enc(x).shape == (2, 6, 16)

    def test_position_encoding_shape_and_range(self):
        pe = sinusoidal_position_encoding(50, 16)
        assert pe.shape == (50, 16)
        assert np.abs(pe).max() <= 1.0 + 1e-12

    def test_position_encoding_distinct_rows(self):
        pe = sinusoidal_position_encoding(20, 8)
        assert not np.allclose(pe[0], pe[1])


class TestOptimizers:
    def test_sgd_descends(self):
        w = Parameter(np.array([5.0]))
        opt = SGD([w], lr=0.1)
        for _ in range(100):
            opt.zero_grad()
            (w * w).sum().backward()
            opt.step()
        assert abs(w.data[0]) < 1e-3

    def test_sgd_momentum_descends(self):
        w = Parameter(np.array([5.0]))
        opt = SGD([w], lr=0.05, momentum=0.9)
        for _ in range(100):
            opt.zero_grad()
            (w * w).sum().backward()
            opt.step()
        assert abs(w.data[0]) < 0.1

    def test_adam_descends_rosenbrock_like(self):
        w = Parameter(np.array([3.0, -2.0]))
        opt = Adam([w], lr=0.05)
        for _ in range(500):
            opt.zero_grad()
            loss = ((w - Tensor(np.array([1.0, 2.0]))) ** 2).sum()
            loss.backward()
            opt.step()
        np.testing.assert_allclose(w.data, [1.0, 2.0], atol=1e-2)

    def test_adam_weight_decay_shrinks(self):
        w = Parameter(np.array([5.0]))
        opt = Adam([w], lr=0.1, weight_decay=0.5)
        for _ in range(200):
            opt.zero_grad()
            (w * 0.0).sum().backward()
            opt.step()
        assert abs(w.data[0]) < 0.5

    def test_empty_parameters_rejected(self):
        with pytest.raises(ConfigError):
            Adam([], lr=0.1)

    def test_invalid_lr(self):
        with pytest.raises(ConfigError):
            SGD([Parameter(np.ones(1))], lr=0.0)

    def test_clip_grad_norm(self):
        w = Parameter(np.ones(4))
        w.grad = np.ones(4) * 10.0
        norm = clip_grad_norm([w], max_norm=1.0)
        assert norm == pytest.approx(20.0)
        assert np.linalg.norm(w.grad) == pytest.approx(1.0, abs=1e-6)

    def test_clip_noop_under_norm(self):
        w = Parameter(np.ones(4))
        w.grad = np.ones(4) * 0.1
        clip_grad_norm([w], max_norm=10.0)
        np.testing.assert_allclose(w.grad, 0.1)


class TestLosses:
    def test_cross_entropy_matches_manual(self):
        logits = Tensor(np.array([[2.0, 1.0, 0.0], [0.0, 0.0, 0.0]]))
        targets = np.array([0, 2])
        loss = cross_entropy(logits, targets)
        probs = np.exp(logits.data) / np.exp(logits.data).sum(-1, keepdims=True)
        expected = -(np.log(probs[0, 0]) + np.log(probs[1, 2])) / 2
        assert loss.item() == pytest.approx(expected)

    def test_cross_entropy_ignore_index(self):
        logits = Tensor(np.array([[2.0, 1.0], [5.0, -5.0]]))
        targets = np.array([0, IGNORE_INDEX])
        loss_partial = cross_entropy(logits, targets)
        loss_single = cross_entropy(Tensor(logits.data[:1]), targets[:1])
        assert loss_partial.item() == pytest.approx(loss_single.item())

    def test_cross_entropy_all_ignored_is_zero(self):
        logits = Tensor(np.ones((2, 3)))
        loss = cross_entropy(logits, np.full(2, IGNORE_INDEX))
        assert loss.item() == 0.0

    def test_cross_entropy_gradcheck(self):
        rng = np.random.default_rng(0)
        raw = rng.normal(size=(4, 5))
        targets = np.array([0, 3, IGNORE_INDEX, 2])
        x = Tensor(raw, requires_grad=True)
        cross_entropy(x, targets).backward()
        eps = 1e-6
        for i in range(4):
            for j in range(5):
                plus = raw.copy()
                plus[i, j] += eps
                minus = raw.copy()
                minus[i, j] -= eps
                num = (
                    cross_entropy(Tensor(plus), targets).item()
                    - cross_entropy(Tensor(minus), targets).item()
                ) / (2 * eps)
                assert x.grad[i, j] == pytest.approx(num, abs=1e-5)

    def test_cross_entropy_target_out_of_range(self):
        with pytest.raises(ShapeError):
            cross_entropy(Tensor(np.ones((1, 3))), np.array([3]))

    def test_cross_entropy_shape_mismatch(self):
        with pytest.raises(ShapeError):
            cross_entropy(Tensor(np.ones((2, 3))), np.array([0, 1, 2]))

    def test_accuracy(self):
        logits = np.array([[0.9, 0.1], [0.2, 0.8], [0.6, 0.4]])
        targets = np.array([0, 1, 1])
        assert accuracy(logits, targets) == pytest.approx(2 / 3)

    def test_accuracy_with_ignore(self):
        logits = np.array([[0.9, 0.1], [0.2, 0.8]])
        targets = np.array([0, IGNORE_INDEX])
        assert accuracy(logits, targets) == pytest.approx(1.0)

    def test_accuracy_all_ignored(self):
        assert accuracy(np.ones((2, 2)), np.full(2, IGNORE_INDEX)) == 0.0
