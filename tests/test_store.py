"""Tests for repro.store: dense/mmap/tiered payload backends.

``make check`` runs this module a second time under
``REPRO_PARALLEL_START_METHOD=spawn`` so the store descriptors crossing
the pool's process boundary are held to the stricter pickling contract.
"""

import dataclasses
import json
import pickle

import numpy as np
import pytest

import repro.obs as obs
from repro.core import (
    BootlegAnnotator,
    BootlegConfig,
    BootlegModel,
    compressed_embeddings,
)
from repro.corpus import (
    CorpusConfig,
    EntityCounts,
    build_vocabulary,
    detokenize,
    generate_corpus,
)
from repro.corpus.tokenizer import tokenize
from repro.errors import ConfigError, StoreError
from repro.kb import WorldConfig, generate_world
from repro.nn import compute_dtype
from repro.parallel import AnnotatorPool, SharedArrayStore, shared_memory_available
from repro.store import (
    DensePayloadStore,
    ShardedMmapStore,
    ShardedStoreWriter,
    TieredPayloadStore,
    restore_from_export,
    store_kinds,
    write_sharded_store,
)


# ----------------------------------------------------------------------
# Shared fixtures: one small world + model per module
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def world():
    return generate_world(WorldConfig(num_entities=120, seed=7))


@pytest.fixture(scope="module")
def corpus(world):
    return generate_corpus(world, CorpusConfig(num_pages=30, seed=7))


@pytest.fixture(scope="module")
def vocab(corpus):
    return build_vocabulary(corpus)


@pytest.fixture(scope="module")
def counts(world, corpus):
    return EntityCounts.from_corpus(corpus, world.num_entities).counts


@pytest.fixture(scope="module")
def model(world, vocab, counts):
    model = BootlegModel(
        BootlegConfig(num_candidates=4, dropout=0.0),
        world.kb,
        vocab,
        entity_counts=counts,
    )
    model.eval()
    return model


@pytest.fixture(scope="module")
def annotator(world, vocab, model):
    return BootlegAnnotator(
        model, vocab, world.candidate_map, world.kb,
        kgs=[world.kg], num_candidates=4, batch_size=4,
    )


@pytest.fixture(scope="module")
def texts(corpus, annotator):
    candidates = [
        detokenize(list(s.tokens)) for s in corpus.sentences("test")[:12]
    ]
    kept = [t for t in candidates if annotator.detect_mentions(tokenize(t))]
    assert len(kept) >= 4, "test corpus must yield mention-bearing texts"
    return (kept * 3)[:12]


@pytest.fixture(autouse=True)
def _reset_payload_store(model):
    # Every test leaves the module-scoped model on its default dense
    # path, whatever backend it attached.
    yield
    model.embedder.invalidate_static_cache()


def _planes(rows=100, dim=8, seed=0, entity_part=True):
    rng = np.random.default_rng(seed)
    planes = {"static": rng.normal(size=(rows, dim)).astype(np.float32)}
    if entity_part:
        planes["entity_part"] = rng.normal(size=(rows, dim)).astype(np.float32)
    return planes


def annotations_equal(a, b):
    assert len(a) == len(b)
    for doc_a, doc_b in zip(a, b):
        assert [dataclasses.asdict(m) for m in doc_a] == [
            dataclasses.asdict(m) for m in doc_b
        ]


# ----------------------------------------------------------------------
# Dense backend
# ----------------------------------------------------------------------
class TestDenseStore:
    def test_gather_matches_direct_indexing(self):
        planes = _planes()
        store = DensePayloadStore(planes["static"], planes["entity_part"])
        ids = np.array([[3, 7], [0, 99]])
        out = store.gather(ids)
        assert np.array_equal(out, planes["static"][ids])
        assert out.flags.writeable
        out[...] = 0  # fresh copy: the plane must be untouched
        assert not np.array_equal(planes["static"][ids], out)
        part = store.gather_entity_part(np.array([1, 2]))
        assert np.array_equal(part, planes["entity_part"][[1, 2]])

    def test_missing_entity_part_raises(self):
        store = DensePayloadStore(_planes(entity_part=False)["static"])
        assert not store.has_entity_part
        with pytest.raises(StoreError):
            store.gather_entity_part(np.array([0]))

    def test_export_restore_roundtrip(self):
        planes = _planes()
        store = DensePayloadStore(planes["static"], planes["entity_part"])
        clone = restore_from_export(store.export_meta(), store.export_arrays())
        assert clone.kind == "dense"
        ids = np.arange(10)
        assert np.array_equal(clone.gather(ids), store.gather(ids))

    def test_unknown_kind_rejected(self):
        with pytest.raises(StoreError):
            restore_from_export({"kind": "nope"}, {})

    def test_registry_lists_all_backends(self):
        assert {"dense", "mmap", "tiered"} <= set(store_kinds())


# ----------------------------------------------------------------------
# Sharded mmap backend
# ----------------------------------------------------------------------
class TestShardedWriter:
    def test_rejects_bad_geometry(self, tmp_path):
        writer = ShardedStoreWriter(tmp_path, shard_rows=4)
        with pytest.raises(StoreError):
            writer.append("bad name", np.zeros((2, 3), dtype=np.float32))
        with pytest.raises(StoreError):
            writer.append("static", np.zeros(6, dtype=np.float32))
        writer.append("static", np.zeros((2, 3), dtype=np.float32))
        with pytest.raises(StoreError):  # dim changed mid-stream
            writer.append("static", np.zeros((2, 4), dtype=np.float32))
        with pytest.raises(StoreError):  # dtype changed mid-stream
            writer.append("static", np.zeros((2, 3), dtype=np.float64))

    def test_finalize_requires_static_and_equal_rows(self, tmp_path):
        writer = ShardedStoreWriter(tmp_path / "a", shard_rows=4)
        writer.append("entity_part", np.zeros((2, 3), dtype=np.float32))
        with pytest.raises(StoreError, match="static"):
            writer.finalize()
        writer = ShardedStoreWriter(tmp_path / "b", shard_rows=4)
        writer.append("static", np.zeros((3, 3), dtype=np.float32))
        writer.append("entity_part", np.zeros((2, 3), dtype=np.float32))
        with pytest.raises(StoreError, match="rows"):
            writer.finalize()

    def test_double_finalize_rejected(self, tmp_path):
        writer = ShardedStoreWriter(tmp_path, shard_rows=4)
        writer.append("static", np.zeros((2, 3), dtype=np.float32))
        writer.finalize()
        with pytest.raises(StoreError):
            writer.finalize()
        with pytest.raises(StoreError):
            writer.append("static", np.zeros((2, 3), dtype=np.float32))


class TestMmapStore:
    def test_roundtrip_and_warm_path(self, tmp_path):
        planes = _planes(rows=100, dim=8)
        manifest = write_sharded_store(tmp_path, planes, shard_rows=16)
        assert manifest["num_rows"] == 100
        store = ShardedMmapStore.open(tmp_path)
        assert store.num_rows == 100
        assert store.hidden_dim == 8
        assert store.has_entity_part
        ids = np.random.default_rng(1).integers(0, 100, size=(5, 4))
        assert np.array_equal(store.gather(ids), planes["static"][ids])
        assert np.array_equal(
            store.gather_entity_part(ids), planes["entity_part"][ids]
        )
        store.warm()
        assert store.attached_shards() >= -(-100 // 16)
        out = store.gather(ids)  # full-span fast path
        assert np.array_equal(out, planes["static"][ids])
        assert out.flags.writeable
        store.close()

    def test_budget_evicts_lru_and_stays_correct(self, tmp_path):
        planes = _planes(rows=1000, dim=16, entity_part=False)
        write_sharded_store(tmp_path, planes, shard_rows=128)
        shard_bytes = 128 * 16 * 4
        store = ShardedMmapStore.open(tmp_path, memory_budget_bytes=2 * shard_bytes)
        rng = np.random.default_rng(2)
        for _ in range(6):
            ids = rng.integers(0, 1000, size=200)
            assert np.array_equal(store.gather(ids), planes["static"][ids])
            assert store.resident_bytes() <= 2 * shard_bytes
            assert store.attached_shards() <= 2
        store.close()
        assert store.resident_bytes() == 0
        with pytest.raises(StoreError):
            store.gather(np.array([0]))

    def test_out_of_range_id_rejected(self, tmp_path):
        write_sharded_store(
            tmp_path, _planes(rows=64, dim=4, entity_part=False), shard_rows=16
        )
        store = ShardedMmapStore.open(
            tmp_path, memory_budget_bytes=16 * 4 * 4
        )
        with pytest.raises(StoreError, match="out of range"):
            store.gather(np.array([500]))

    def test_open_validates_manifest(self, tmp_path):
        with pytest.raises(StoreError, match="manifest"):
            ShardedMmapStore.open(tmp_path / "empty")
        store_dir = tmp_path / "store"
        write_sharded_store(
            store_dir, _planes(rows=10, dim=4, entity_part=False), shard_rows=4
        )
        manifest_path = store_dir / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["format"] = "someone-else/v9"
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(StoreError, match="format"):
            ShardedMmapStore.open(store_dir)

    def test_open_validates_file_sizes(self, tmp_path):
        write_sharded_store(
            tmp_path, _planes(rows=10, dim=4, entity_part=False), shard_rows=4
        )
        payload = tmp_path / "static.payload"
        payload.write_bytes(payload.read_bytes()[:-8])
        with pytest.raises(StoreError, match="bytes"):
            ShardedMmapStore.open(tmp_path)

    def test_export_meta_is_picklable_and_reopens(self, tmp_path):
        planes = _planes(rows=50, dim=4, entity_part=False)
        write_sharded_store(tmp_path, planes, shard_rows=16)
        store = ShardedMmapStore.open(tmp_path, memory_budget_bytes=1 << 20)
        meta = pickle.loads(pickle.dumps(store.export_meta()))
        assert store.export_arrays() == {}  # files travel via the OS, not shm
        clone = restore_from_export(meta, {})
        assert clone.memory_budget_bytes == 1 << 20
        ids = np.arange(50)
        assert np.array_equal(clone.gather(ids), planes["static"][ids])

    def test_gather_emits_store_metrics(self, tmp_path):
        planes = _planes(rows=64, dim=4, entity_part=False)
        write_sharded_store(tmp_path, planes, shard_rows=16)
        with obs.scope(fresh=True) as (metrics, _tracer):
            store = ShardedMmapStore.open(
                tmp_path, memory_budget_bytes=2 * 16 * 4 * 4
            )
            for start in (0, 16, 32, 48):
                store.gather(np.arange(start, start + 16))
            snapshot = metrics.to_dict()
        assert snapshot["counters"]["store.shard_attach"] == 4
        assert snapshot["counters"]["store.shard_detach"] == 2
        assert snapshot["gauges"]["store.resident_bytes"] == 2 * 16 * 4 * 4
        assert snapshot["histograms"]["store.row_gather_seconds"]["count"] == 4


# ----------------------------------------------------------------------
# Tiered backend (top-k% compression on the payload plane)
# ----------------------------------------------------------------------
class TestTieredStore:
    def test_build_validation(self):
        planes = _planes(rows=40, dim=8)
        counts = np.zeros(40)
        with pytest.raises(StoreError):
            TieredPayloadStore.build(planes, counts, keep_percent=150.0)
        with pytest.raises(StoreError):
            TieredPayloadStore.build(
                {"static": planes["static"]}, counts, keep_percent=10.0
            )
        with pytest.raises(StoreError):
            TieredPayloadStore.build(planes, np.zeros(7), keep_percent=10.0)

    def test_head_exact_tail_shares_entity(self):
        planes = _planes(rows=40, dim=8, seed=3)
        counts = np.zeros(40)
        counts[:10] = np.arange(10, 0, -1)  # entities 0..9 popular
        store = TieredPayloadStore.build(planes, counts, keep_percent=25.0)
        assert store.num_rows == 40
        assert store.head_rows_kept == 10
        head = np.arange(10)
        assert np.array_equal(store.gather(head), planes["static"][head])
        assert np.array_equal(
            store.gather_entity_part(head), planes["entity_part"][head]
        )
        # Every tail entity carries the one shared replacement
        # contribution; its full row round-trips within uint8 error.
        tail = np.arange(10, 40)
        part = store.gather_entity_part(tail)
        assert np.all(part == part[0])
        base = planes["static"][tail] - planes["entity_part"][tail]
        bound = (base.max(axis=1) - base.min(axis=1)) / 255.0 / 2.0 + 1e-6
        err = np.abs(store.gather(tail) - (base + part))
        assert np.all(err <= bound[:, None])
        # Tiering shrinks the payload: uint8 tail beats float32 rows.
        dense_bytes = sum(p.nbytes for p in planes.values())
        assert store.resident_bytes() < dense_bytes

    def test_export_roundtrip_and_missing_component(self):
        planes = _planes(rows=30, dim=4, seed=4)
        counts = np.arange(30)
        store = TieredPayloadStore.build(planes, counts, keep_percent=20.0)
        arrays = store.export_arrays()
        clone = restore_from_export(store.export_meta(), arrays)
        ids = np.arange(30)
        assert np.array_equal(clone.gather(ids), store.gather(ids))
        assert clone.keep_percent == 20.0
        broken = dict(arrays)
        del broken["tail_q"]
        with pytest.raises(StoreError, match="tail_q"):
            restore_from_export(store.export_meta(), broken)

    def test_agrees_with_compress_then_dense(self, model, counts):
        """Tiering the payload == compressing the table, then caching.

        Head rows must match bitwise; tail rows up to the uint8
        quantization the tiered store applies to the entity-independent
        part. Uses the same default rng as compressed_embeddings so both
        paths pick the same replacement entity.
        """
        embedder = model.embedder
        planes = {k: v.copy() for k, v in embedder.payload_planes().items()}
        store = TieredPayloadStore.build(planes, counts, keep_percent=10.0)
        with compressed_embeddings(model, counts, keep_percent=10.0):
            assert not embedder.static_cache_ready  # compress dropped it
            compressed = embedder.payload_planes()
            head = np.flatnonzero(store._head_slot >= 0)
            tail = np.flatnonzero(store._head_slot < 0)
            assert np.array_equal(
                store.gather(head), compressed["static"][head]
            )
            np.testing.assert_allclose(
                store.gather_entity_part(tail),
                compressed["entity_part"][tail],
                rtol=0,
                atol=1e-12,
            )
            base = planes["static"][tail] - planes["entity_part"][tail]
            bound = (base.max(axis=1) - base.min(axis=1)) / 255.0 / 2.0 + 1e-6
            err = np.abs(store.gather(tail) - compressed["static"][tail])
            assert np.all(err <= bound[:, None])
        # Exiting the context restored the table AND dropped the
        # compressed cache (the regression this guards: a stale cache
        # made compression a silent no-op).
        assert not embedder.static_cache_ready
        restored = embedder.payload_planes()
        np.testing.assert_allclose(restored["static"], planes["static"])


# ----------------------------------------------------------------------
# Embedder integration
# ----------------------------------------------------------------------
class TestEmbedderIntegration:
    def test_attach_validates_row_count(self, model):
        with pytest.raises(ConfigError, match="rows"):
            model.embedder.attach_payload_store(
                DensePayloadStore(np.zeros((3, 8), dtype=np.float32))
            )

    def test_static_only_store_on_entity_model_raises(self, model, tmp_path):
        # The model subtracts the entity contribution on padded slots;
        # a store without that plane must fail loudly, not silently
        # skip the subtraction.
        with compute_dtype(np.float32):
            planes = model.embedder.payload_planes()
            write_sharded_store(
                tmp_path, {"static": planes["static"]}, shard_rows=32
            )
            model.embedder.attach_payload_store(ShardedMmapStore.open(tmp_path))
            ids = np.zeros((1, 1, 4), dtype=np.int64)
            mask = np.array([[[True, True, False, False]]])
            with pytest.raises(StoreError):
                model.embedder.forward_cached(
                    ids, mask, predicted_type=_zero_predicted_type(model)
                )

    def test_annotations_identical_dense_vs_mmap(
        self, model, annotator, texts, tmp_path
    ):
        with compute_dtype(np.float32):
            dense_out = annotator.annotate_batch(texts)
            write_sharded_store(
                tmp_path, model.embedder.payload_planes(), shard_rows=32
            )
            model.embedder.attach_payload_store(ShardedMmapStore.open(tmp_path))
            mmap_out = annotator.annotate_batch(texts)
            assert model.embedder.payload_store.kind == "mmap"
        annotations_equal(dense_out, mmap_out)


def _zero_predicted_type(model):
    from repro.nn.tensor import Tensor

    type_dim = model.embedder.config.type_dim
    return Tensor(np.zeros((1, 1, type_dim), dtype=np.float32))


# ----------------------------------------------------------------------
# Process-boundary plumbing (shm descriptor + annotator pool)
# ----------------------------------------------------------------------
@pytest.mark.skipif(
    not shared_memory_available(), reason="POSIX shared memory unavailable"
)
class TestPoolIntegration:
    def test_manifest_store_descriptor_roundtrips(self):
        meta = {"kind": "mmap", "store_dir": "/x", "memory_budget_bytes": None}
        with SharedArrayStore.export(
            {"a": np.ones((2, 2))}, store_meta=meta
        ) as shm_store:
            clone = pickle.loads(pickle.dumps(shm_store.manifest))
            assert clone.store == meta
        with SharedArrayStore.export({"a": np.ones((2, 2))}) as shm_store:
            assert shm_store.manifest.store is None

    def test_pool_serves_mmap_store(self, model, annotator, texts, tmp_path):
        with compute_dtype(np.float32):
            serial = annotator.annotate_batch(texts)
            write_sharded_store(
                tmp_path, model.embedder.payload_planes(), shard_rows=32
            )
            model.embedder.attach_payload_store(ShardedMmapStore.open(tmp_path))
            with AnnotatorPool.from_annotator(annotator, workers=2) as pool:
                parallel = pool.annotate_batch(texts, chunk_size=5)
        annotations_equal(serial, parallel)

    def test_pool_serves_tiered_store(self, model, annotator, texts, counts):
        with compute_dtype(np.float32):
            store = TieredPayloadStore.build(
                model.embedder.payload_planes(), counts, keep_percent=50.0
            )
            model.embedder.attach_payload_store(store)
            serial = annotator.annotate_batch(texts)
            with AnnotatorPool.from_annotator(annotator, workers=2) as pool:
                parallel = pool.annotate_batch(texts, chunk_size=5)
        annotations_equal(serial, parallel)


# ----------------------------------------------------------------------
# CLI wiring
# ----------------------------------------------------------------------
class TestCliStoreFlags:
    def _args(self, **overrides):
        import argparse

        defaults = {
            "store": "dense",
            "store_dir": None,
            "keep_percent": 10.0,
            "store_budget_mb": None,
        }
        defaults.update(overrides)
        return argparse.Namespace(**defaults)

    def test_dense_is_noop(self, model):
        from repro.cli import _configure_store

        _configure_store(model, self._args(), None)
        assert not model.embedder.static_cache_ready

    def test_mmap_requires_store_dir(self, model):
        from repro.cli import _configure_store

        with pytest.raises(StoreError, match="store-dir"):
            _configure_store(model, self._args(store="mmap"), None)

    def test_tiered_requires_counts(self, model):
        from repro.cli import _configure_store

        with pytest.raises(StoreError, match="counts"):
            _configure_store(model, self._args(store="tiered"), None)

    def test_mmap_writes_then_reopens(self, model, tmp_path, capsys):
        from repro.cli import _configure_store

        args = self._args(
            store="mmap", store_dir=str(tmp_path), store_budget_mb=64.0
        )
        _configure_store(model, args, None)
        assert (tmp_path / "manifest.json").exists()
        assert model.embedder.payload_store.kind == "mmap"
        first = model.embedder.payload_store
        assert first.memory_budget_bytes == 64 * 2**20
        # Second run re-opens the existing store rather than rewriting.
        mtime = (tmp_path / "static.payload").stat().st_mtime_ns
        model.embedder.invalidate_static_cache()
        _configure_store(model, args, None)
        assert (tmp_path / "static.payload").stat().st_mtime_ns == mtime
        capsys.readouterr()

    def test_tiered_attaches(self, model, counts, capsys):
        from repro.cli import _configure_store

        _configure_store(
            model, self._args(store="tiered", keep_percent=20.0), counts
        )
        store = model.embedder.payload_store
        assert store.kind == "tiered"
        assert store.keep_percent == 20.0
        capsys.readouterr()

    def test_parser_exposes_store_flags(self):
        from repro.cli import build_parser

        parser = build_parser()
        args = parser.parse_args(
            [
                "annotate", "--world", "w.npz", "--model", "m.npz",
                "--text", "x", "--store", "tiered", "--keep-percent", "25",
            ]
        )
        assert args.store == "tiered"
        assert args.keep_percent == 25.0
