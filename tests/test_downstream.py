"""Tests for the TACRED-style task, relation models, and Overton sim."""

import numpy as np
import pytest

from repro.corpus import CorpusConfig, Vocabulary, generate_corpus
from repro.downstream import (
    NO_RELATION,
    RelationModel,
    TacredConfig,
    TacredDataset,
    extract_bootleg_features,
    generate_tacred,
    iter_labels,
    split_examples,
    tacred_micro_f1,
)
from repro.errors import ConfigError
from repro.kb import WorldConfig, generate_world
from repro.corpus import build_vocabulary
from repro.core import BootlegConfig, BootlegModel


@pytest.fixture(scope="module")
def world():
    return generate_world(WorldConfig(num_entities=200, seed=9))


@pytest.fixture(scope="module")
def examples(world):
    return generate_tacred(world, TacredConfig(num_examples=120, seed=3))


@pytest.fixture(scope="module")
def vocab(world, examples):
    corpus = generate_corpus(world, CorpusConfig(num_pages=40, seed=9))
    vocab = build_vocabulary(corpus)
    # TACRED tokens use the same world vocabulary plus fillers; extend
    # coverage by building over example tokens too.
    return Vocabulary.build(
        [s.tokens for s in corpus.sentences()] + [e.tokens for e in examples]
    )


class TestTacredGeneration:
    def test_deterministic(self, world):
        config = TacredConfig(num_examples=50, seed=1)
        a = generate_tacred(world, config)
        b = generate_tacred(world, config)
        assert [e.tokens for e in a] == [e.tokens for e in b]

    def test_label_range(self, world, examples):
        num_labels = world.kb.num_relations + 1
        for example in examples:
            assert 0 <= example.label < num_labels

    def test_positive_pairs_connected(self, world, examples):
        for example in examples:
            if example.label != NO_RELATION:
                assert world.kg.connected(
                    example.subject_entity_id, example.object_entity_id
                )

    def test_negative_pairs_disconnected(self, world, examples):
        for example in examples:
            if example.label == NO_RELATION:
                assert not world.kg.connected(
                    example.subject_entity_id, example.object_entity_id
                )

    def test_explicit_examples_contain_indicator(self, world, examples):
        checked = 0
        for example in examples:
            if example.explicit and example.label != NO_RELATION:
                relation = world.kb.relation_record(example.label - 1)
                assert set(relation.indicator_words) & set(example.tokens)
                checked += 1
        assert checked > 3

    def test_spans_point_at_mentions(self, world, examples):
        for example in examples:
            subject = world.kb.entity(example.subject_entity_id)
            assert example.tokens[example.subject_span[0]] == subject.mention_stem

    def test_splits(self, examples):
        train = split_examples(examples, "train")
        test = split_examples(examples, "test")
        assert len(train) > len(test) > 0

    def test_iter_labels(self, world):
        labels = dict(iter_labels(world))
        assert labels[0] == "no_relation"
        assert len(labels) == world.kb.num_relations + 1

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            TacredConfig(num_examples=5).validate()
        with pytest.raises(ConfigError):
            TacredConfig(negative_fraction=1.0).validate()


class TestTacredScorer:
    def test_perfect(self):
        assert tacred_micro_f1([1, 2, 0], [1, 2, 0]) == pytest.approx(100.0)

    def test_no_relation_excluded(self):
        # Predicting no_relation everywhere scores 0 even if gold has some.
        assert tacred_micro_f1([0, 0], [1, 0]) == 0.0

    def test_partial(self):
        # One correct positive, one spurious positive, one missed positive.
        score = tacred_micro_f1([1, 2, 0], [1, 0, 3])
        precision, recall = 1 / 2, 1 / 2
        assert score == pytest.approx(100 * 2 * precision * recall / (precision + recall))

    def test_length_mismatch(self):
        with pytest.raises(ConfigError):
            tacred_micro_f1([1], [1, 2])


class TestRelationModel:
    def test_text_only_forward(self, vocab, examples):
        dataset = TacredDataset(examples[:16], vocab)
        model = RelationModel(vocab, num_labels=25, rng=np.random.default_rng(0))
        batch = dataset.collate(examples[:8])
        output = model(batch)
        assert output.scores.shape == (8, 25)
        assert np.isfinite(model.loss(batch, output).item())

    def test_bootleg_features_required_when_configured(self, vocab, examples):
        model = RelationModel(
            vocab, num_labels=25, bootleg_dim=16, rng=np.random.default_rng(0)
        )
        dataset = TacredDataset(examples[:8], vocab)
        batch = dataset.collate(examples[:8])
        with pytest.raises(ConfigError):
            model(batch)

    def test_with_features_forward(self, vocab, examples):
        features = {e.example_id: np.ones((2, 16)) for e in examples}
        dataset = TacredDataset(examples[:8], vocab, bootleg_features=features)
        model = RelationModel(
            vocab, num_labels=25, bootleg_dim=16, rng=np.random.default_rng(0)
        )
        batch = dataset.collate(examples[:8])
        output = model(batch)
        assert output.scores.shape == (8, 25)

    def test_batches_cover(self, vocab, examples):
        dataset = TacredDataset(examples, vocab)
        total = sum(batch.size for batch in dataset.batches(16))
        assert total == len(examples)

    def test_empty_collate_rejected(self, vocab, examples):
        with pytest.raises(ConfigError):
            TacredDataset(examples, vocab).collate([])


class TestFeatureExtraction:
    def test_extract_shapes_and_signals(self, world, vocab, examples):
        model = BootlegModel(
            BootlegConfig(num_candidates=4, dropout=0.0),
            world.kb,
            vocab,
            entity_counts=np.ones(world.num_entities),
        )
        features, signals = extract_bootleg_features(
            model, examples[:20], vocab, world.candidate_map, world,
            num_candidates=4,
        )
        assert set(features) == {e.example_id for e in examples[:20]}
        # Feature = contextual (H) + type payload + relation payload
        # + 2 pairwise KG scalars.
        expected_dim = (
            model.config.hidden_dim
            + model.config.type_dim
            + model.config.relation_dim
            + 2
        )
        for example in examples[:20]:
            assert features[example.example_id].shape == (2, expected_dim)
            signal = signals[example.example_id]
            assert 0 <= signal.entity_proportion <= 1
            assert 0 <= signal.type_proportion <= 1
