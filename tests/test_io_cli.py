"""Tests for world/corpus serialization, the CLI, two-hop KG, page
features, and bootstrap intervals."""

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.corpus import (
    CorpusConfig,
    NedDataset,
    build_page_graph,
    build_vocabulary,
    generate_corpus,
    load_corpus,
    save_corpus,
)
from repro.errors import ConfigError, SerializationError
from repro.eval import MentionPrediction, bootstrap_f1, f1_difference_significant
from repro.kb import (
    KnowledgeGraph,
    Triple,
    TwoHopKnowledgeGraph,
    WorldConfig,
    generate_world,
    load_world,
    save_world,
)
from repro.weaklabel import weak_label_corpus


@pytest.fixture(scope="module")
def world():
    return generate_world(WorldConfig(num_entities=150, seed=17))


@pytest.fixture(scope="module")
def corpus(world):
    raw = generate_corpus(world, CorpusConfig(num_pages=40, seed=17))
    labeled, _ = weak_label_corpus(raw, world.kb)
    return labeled


class TestWorldIO:
    def test_roundtrip_equivalence(self, world, tmp_path):
        path = tmp_path / "world.json"
        save_world(world, path)
        restored = load_world(path)
        assert restored.kb.num_entities == world.kb.num_entities
        assert [e.title for e in restored.kb.entities()] == [
            e.title for e in world.kb.entities()
        ]
        assert restored.kg.num_triples == world.kg.num_triples
        assert restored.unseen_entity_ids == world.unseen_entity_ids
        np.testing.assert_allclose(restored.mention_weights, world.mention_weights)
        # Candidate map preserved with scores.
        for entity in list(world.kb.entities())[:20]:
            assert restored.candidate_map.candidates(
                entity.mention_stem
            ) == world.candidate_map.candidates(entity.mention_stem)

    def test_missing_file(self, tmp_path):
        with pytest.raises(SerializationError):
            load_world(tmp_path / "nope.json")

    def test_bad_version(self, world, tmp_path):
        import json

        from repro.kb.io import world_to_dict

        payload = world_to_dict(world)
        payload["version"] = 99
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(payload))
        with pytest.raises(SerializationError):
            load_world(path)


class TestCorpusIO:
    def test_roundtrip_preserves_everything(self, corpus, tmp_path):
        path = tmp_path / "corpus.jsonl"
        save_corpus(corpus, path)
        restored = load_corpus(path)
        assert len(restored.pages) == len(corpus.pages)
        assert restored.num_mentions() == corpus.num_mentions()
        for original, loaded in zip(corpus.sentences(), restored.sentences()):
            assert original.tokens == loaded.tokens
            assert original.pattern == loaded.pattern
            assert [m.provenance for m in original.mentions] == [
                m.provenance for m in loaded.mentions
            ]

    def test_truncated_file_detected(self, corpus, tmp_path):
        path = tmp_path / "corpus.jsonl"
        save_corpus(corpus, path)
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-3]) + "\n")
        with pytest.raises(SerializationError):
            load_corpus(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(SerializationError):
            load_corpus(tmp_path / "nope.jsonl")


class TestTwoHopGraph:
    def test_shared_neighbor_pairs_linked(self):
        # 0-2, 1-2: 0 and 1 share neighbor 2 but are not connected.
        kg = KnowledgeGraph(4, [Triple(0, 0, 2), Triple(1, 0, 2)])
        two_hop = TwoHopKnowledgeGraph(kg)
        matrix = two_hop.candidate_adjacency(np.array([0, 1, 3]))
        assert matrix[0, 1] == pytest.approx(np.log1p(1))
        assert matrix[0, 2] == 0.0

    def test_direct_pairs_excluded_by_default(self):
        kg = KnowledgeGraph(4, [Triple(0, 0, 1), Triple(0, 0, 2), Triple(1, 0, 2)])
        two_hop = TwoHopKnowledgeGraph(kg)
        matrix = two_hop.candidate_adjacency(np.array([0, 1]))
        assert matrix[0, 1] == 0.0  # directly connected -> excluded
        inclusive = TwoHopKnowledgeGraph(kg, include_direct=True)
        matrix = inclusive.candidate_adjacency(np.array([0, 1]))
        assert matrix[0, 1] > 0.0

    def test_padding_respected(self):
        kg = KnowledgeGraph(4, [Triple(0, 0, 2), Triple(1, 0, 2)])
        two_hop = TwoHopKnowledgeGraph(kg)
        matrix = two_hop.candidate_adjacency(np.array([0, -1, 1]), pad_id=-1)
        assert matrix[0, 1] == 0.0
        assert matrix[0, 2] > 0.0

    def test_pluggable_into_dataset(self, world, corpus):
        vocab = build_vocabulary(corpus)
        dataset = NedDataset(
            corpus, "train", vocab, world.candidate_map, 4,
            kgs=[world.kg, TwoHopKnowledgeGraph(world.kg)],
        )
        item = dataset[0]
        assert len(item.adjacencies) == 2


class TestPageFeature:
    def test_feature_shapes_and_range(self, world, corpus):
        vocab = build_vocabulary(corpus)
        page_graph = build_page_graph(corpus, world.num_entities)
        dataset = NedDataset(
            corpus, "train", vocab, world.candidate_map, 4,
            page_graph=page_graph,
        )
        batch = dataset.collate(dataset.encoded[:6])
        assert batch.page_feature is not None
        assert batch.page_feature.shape == batch.candidate_ids.shape
        assert (batch.page_feature >= 0).all()
        # Some candidate must see page co-occurrence signal.
        total = sum(float(e.page_feature.sum()) for e in dataset.encoded)
        assert total > 0

    def test_no_page_graph_means_none(self, world, corpus):
        vocab = build_vocabulary(corpus)
        dataset = NedDataset(corpus, "train", vocab, world.candidate_map, 4)
        batch = dataset.collate(dataset.encoded[:2])
        assert batch.page_feature is None


class TestBootstrap:
    def _predictions(self, outcomes):
        return [
            MentionPrediction(
                sentence_id=i,
                mention_index=0,
                surface="x",
                gold_entity_id=1,
                predicted_entity_id=1 if correct else 2,
                candidate_ids=np.array([1, 2]),
                candidate_scores=np.array([1.0, 0.0]),
                evaluable=True,
                is_weak=False,
            )
            for i, correct in enumerate(outcomes)
        ]

    def test_interval_contains_point(self):
        predictions = self._predictions([True] * 70 + [False] * 30)
        interval = bootstrap_f1(predictions, num_samples=200, seed=1)
        assert interval.low <= interval.point <= interval.high
        assert interval.point == pytest.approx(70.0)
        assert interval.num_mentions == 100

    def test_perfect_predictions_tight_interval(self):
        interval = bootstrap_f1(self._predictions([True] * 50), num_samples=100)
        assert interval.point == interval.low == interval.high == 100.0

    def test_empty_predictions(self):
        interval = bootstrap_f1([])
        assert interval.num_mentions == 0

    def test_invalid_params(self):
        with pytest.raises(ConfigError):
            bootstrap_f1(self._predictions([True]), alpha=2.0)
        with pytest.raises(ConfigError):
            bootstrap_f1(self._predictions([True]), num_samples=2)

    def test_paired_difference_detects_gap(self):
        strong = self._predictions([True] * 90 + [False] * 10)
        weak = self._predictions([True] * 40 + [False] * 60)
        mean, significant = f1_difference_significant(strong, weak, num_samples=300)
        assert mean == pytest.approx(50.0)
        assert significant

    def test_paired_difference_null(self):
        same = self._predictions([True, False] * 30)
        mean, significant = f1_difference_significant(same, same, num_samples=200)
        assert mean == 0.0
        assert not significant


class TestCli:
    def test_full_lifecycle(self, tmp_path, capsys):
        world_path = str(tmp_path / "world.json")
        corpus_path = str(tmp_path / "corpus.jsonl")
        model_path = str(tmp_path / "model.npz")
        assert cli_main([
            "generate-world", "--entities", "120", "--seed", "5",
            "--out", world_path,
        ]) == 0
        assert cli_main([
            "generate-corpus", "--world", world_path, "--pages", "25",
            "--seed", "5", "--weak-label", "--out", corpus_path,
        ]) == 0
        assert cli_main([
            "train", "--world", world_path, "--corpus", corpus_path,
            "--epochs", "1", "--candidates", "4", "--prefetch", "1",
            "--out", model_path,
        ]) == 0
        assert cli_main([
            "evaluate", "--world", world_path, "--corpus", corpus_path,
            "--model", model_path, "--split", "val", "--workers", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "val split" in out
        assert cli_main([
            "annotate", "--world", world_path, "--model", model_path,
            "--text", "w1 name1 w2", "--workers", "2",
        ]) == 0

    def test_presets_accepted(self, tmp_path):
        world_path = str(tmp_path / "world.json")
        corpus_path = str(tmp_path / "corpus.jsonl")
        cli_main(["generate-world", "--entities", "120", "--seed", "6",
                  "--out", world_path])
        cli_main(["generate-corpus", "--world", world_path, "--pages", "20",
                  "--seed", "6", "--out", corpus_path])
        for preset in ("type-only", "kg-only", "ent-only"):
            model_path = str(tmp_path / f"{preset}.npz")
            assert cli_main([
                "train", "--world", world_path, "--corpus", corpus_path,
                "--preset", preset, "--epochs", "1", "--candidates", "4",
                "--out", model_path,
            ]) == 0

    def test_error_reported_cleanly(self, tmp_path, capsys):
        rc = cli_main([
            "generate-corpus", "--world", str(tmp_path / "missing.json"),
            "--out", str(tmp_path / "c.jsonl"),
        ])
        assert rc == 1
        assert "error:" in capsys.readouterr().err
