"""Tests for the live telemetry plane: exporter, sampler, flight recorder.

Covers Prometheus text rendering, the four HTTP endpoints, the health
registry (readiness probes + progress watermarks), the /proc resource
sampler, the bounded flight recorder (SIGUSR2 and crash-hook dumps),
the pool's periodic per-worker telemetry shipping (live scrape series,
health flip on a killed worker, dead-worker snapshot recovery), and the
CLI teardown of ``--serve-metrics`` / ``--flight-dir``. ``make check``
runs this module a second time under the spawn start method.
"""

import dataclasses
import json
import os
import signal
import sys
import time
import urllib.error
import urllib.request
from contextlib import contextmanager

import numpy as np
import pytest

import repro.obs as obs
from repro import cli
from repro.core import BootlegAnnotator, BootlegConfig, BootlegModel
from repro.corpus import (
    CorpusConfig,
    EntityCounts,
    build_vocabulary,
    detokenize,
    generate_corpus,
)
from repro.corpus.tokenizer import tokenize
from repro.kb import WorldConfig, generate_world
from repro.nn import compute_dtype
from repro.obs import exporter
from repro.obs import sampler as sampler_mod
from repro.obs.exporter import (
    HealthRegistry,
    TelemetryServer,
    collect_registry,
    render_prometheus,
)
from repro.obs.flight import FlightRecorder
from repro.obs.metrics import MetricsRegistry
from repro.parallel import AnnotatorPool, shared_memory_available


def _get(url):
    try:
        with urllib.request.urlopen(url, timeout=5.0) as response:
            return (
                response.status,
                response.headers.get("Content-Type", ""),
                response.read().decode("utf-8"),
            )
    except urllib.error.HTTPError as error:
        return error.code, error.headers.get("Content-Type", ""), (
            error.read().decode("utf-8")
        )


# ----------------------------------------------------------------------
# Prometheus text rendering
# ----------------------------------------------------------------------
class TestRenderPrometheus:
    def test_histogram_renders_as_summary_with_labels(self):
        registry = MetricsRegistry()
        registry.histogram(
            "parallel.pool.chunk_seconds", worker="0"
        ).observe(0.5)
        text = render_prometheus(registry.to_dict())
        # The acceptance format: dots sanitised, labels sorted, quantile
        # series plus _count/_sum.
        assert "# TYPE parallel_pool_chunk_seconds summary" in text
        assert (
            'parallel_pool_chunk_seconds{quantile="0.5",worker="0"} 0.5'
            in text
        )
        assert 'parallel_pool_chunk_seconds_count{worker="0"} 1' in text
        assert 'parallel_pool_chunk_seconds_sum{worker="0"} 0.5' in text

    def test_counters_gauges_and_single_type_line(self):
        registry = MetricsRegistry()
        registry.counter("eval.batches").inc(3)
        registry.gauge("store.resident_bytes").set(1024)
        registry.gauge("store.resident_bytes", pid=7).set(512)
        text = render_prometheus(registry.to_dict())
        assert "# TYPE eval_batches counter" in text
        assert "eval_batches 3.0" in text
        assert text.count("# TYPE store_resident_bytes gauge") == 1
        assert "store_resident_bytes 1024.0" in text
        assert 'store_resident_bytes{pid="7"} 512.0' in text

    def test_empty_histogram_quantiles_are_nan(self):
        registry = MetricsRegistry()
        registry.histogram("infer.batch_seconds")
        text = render_prometheus(registry.to_dict())
        assert 'infer_batch_seconds{quantile="0.5"} NaN' in text
        assert "infer_batch_seconds_count 0" in text

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.gauge("g.bytes", path='a"b\\c').set(1.0)
        text = render_prometheus(registry.to_dict())
        assert r'g_bytes{path="a\"b\\c"} 1.0' in text


# ----------------------------------------------------------------------
# Live sources: scrape-time merge of cumulative snapshots
# ----------------------------------------------------------------------
class TestLiveSources:
    def test_merge_is_scrape_local_and_idempotent(self):
        with obs.scope(fresh=True) as (metrics, _tracer):
            metrics.histogram("parallel.pool.chunk_seconds").observe(0.1)
            worker = MetricsRegistry()
            worker.histogram("parallel.pool.chunk_seconds").observe(0.5)
            snapshot = worker.snapshot()
            token = exporter.register_live_source(
                lambda: [({"worker": 0}, snapshot)]
            )
            try:
                first = collect_registry().to_dict()
                second = collect_registry().to_dict()
            finally:
                exporter.unregister_live_source(token)
            key = "parallel.pool.chunk_seconds{worker=0}"
            # Cumulative snapshots merge into a throwaway registry per
            # scrape: repeated scrapes must not double count, and the
            # owner registry must stay untouched.
            assert first["histograms"][key]["count"] == 1
            assert second["histograms"][key]["count"] == 1
            assert key not in metrics.to_dict()["histograms"]
            assert (
                first["histograms"]["parallel.pool.chunk_seconds"]["count"]
                == 1
            )

    def test_failing_source_skipped(self):
        def broken():
            raise RuntimeError("worker went away")

        token = exporter.register_live_source(broken)
        try:
            collect_registry()  # must not raise
        finally:
            exporter.unregister_live_source(token)


# ----------------------------------------------------------------------
# Health registry
# ----------------------------------------------------------------------
class TestHealthRegistry:
    def test_aggregates_ok_across_components(self):
        registry = HealthRegistry()
        registry.register("store", lambda: {"ok": True, "kind": "dense"})
        report = registry.check()
        assert report["ok"] is True
        assert report["components"]["store"]["kind"] == "dense"
        registry.register("pool", lambda: {"ok": False, "workers_alive": 1})
        report = registry.check()
        assert report["ok"] is False
        assert report["components"]["pool"]["workers_alive"] == 1

    def test_raising_probe_reported_not_propagated(self):
        registry = HealthRegistry()

        def broken():
            raise RuntimeError("boom")

        registry.register("store", broken)
        report = registry.check()
        assert report["ok"] is False
        assert "boom" in report["components"]["store"]["error"]

    def test_beat_exposes_seconds_since_progress(self):
        registry = HealthRegistry()
        registry.register("pool", lambda: {"ok": True})
        registry.beat("pool")
        report = registry.check()
        since = report["components"]["pool"]["seconds_since_progress"]
        assert 0.0 <= since < 5.0

    def test_unregister_compares_probe_by_equality(self):
        class Component:
            def health(self):
                return {"ok": True}

        registry = HealthRegistry()
        first, second = Component(), Component()
        registry.register("pool", first.health)
        # A stale owner must not evict the current registration...
        registry.unregister("pool", second.health)
        assert "pool" in registry.check()["components"]
        # ...but the real owner must, even though bound methods are
        # fresh objects on every attribute access.
        registry.unregister("pool", first.health)
        assert registry.check()["components"] == {}


# ----------------------------------------------------------------------
# HTTP endpoints
# ----------------------------------------------------------------------
class TestTelemetryServer:
    def test_metrics_endpoints_and_trace(self):
        with obs.scope(fresh=True) as (metrics, _tracer):
            metrics.counter("eval.batches").inc(3)
            metrics.histogram("infer.batch_seconds").observe(0.25)
            with obs.span("live.unit"):
                pass
            with TelemetryServer(port=0) as server:
                status, ctype, body = _get(server.url + "/metrics")
                assert status == 200
                assert ctype.startswith("text/plain")
                assert "version=0.0.4" in ctype
                assert "eval_batches 3.0" in body
                assert 'infer_batch_seconds{quantile="0.5"} 0.25' in body

                status, ctype, body = _get(server.url + "/metrics.json")
                assert status == 200 and ctype == "application/json"
                assert json.loads(body)["counters"]["eval.batches"] == 3

                status, _, body = _get(server.url + "/trace")
                assert status == 200
                names = {s["name"] for s in json.loads(body)["spans"]}
                assert "live.unit" in names

                # Trailing slashes and query strings are normalised;
                # unknown paths are 404.
                assert _get(server.url + "/metrics/?x=1")[0] == 200
                assert _get(server.url + "/nope")[0] == 404

    def test_healthz_flips_to_503_on_failing_probe(self):
        exporter.health.reset()
        try:
            exporter.health.register("store", lambda: {"ok": True})
            with TelemetryServer(port=0) as server:
                status, _, body = _get(server.url + "/healthz")
                assert status == 200 and json.loads(body)["ok"] is True
                exporter.health.register(
                    "pool", lambda: {"ok": False, "workers_alive": 1}
                )
                status, _, body = _get(server.url + "/healthz")
                report = json.loads(body)
                assert status == 503 and report["ok"] is False
                assert report["components"]["pool"]["workers_alive"] == 1
        finally:
            exporter.health.reset()

    def test_stop_is_idempotent_and_frees_the_port(self):
        server = TelemetryServer(port=0).start()
        port = server.port
        server.stop()
        server.stop()
        assert server.port is None
        # The port is released: a fresh server can bind it again.
        with TelemetryServer(port=port):
            pass


# ----------------------------------------------------------------------
# Resource sampler
# ----------------------------------------------------------------------
class TestResourceSampler:
    def test_sample_once_records_process_gauges(self):
        registry = MetricsRegistry()
        sampler_mod.ResourceSampler(interval=60.0).sample_once(
            registry=registry
        )
        gauges = registry.to_dict()["gauges"]
        assert gauges["process.resident_bytes"] > 0
        assert gauges["process.open_fds"] > 0
        assert gauges["process.cpu_seconds"] >= 0.0
        assert "process.shm_bytes" in gauges

    def test_pids_provider_and_gauge_sources(self):
        pid = os.getpid()
        pids_token = sampler_mod.register_pids_provider(lambda: [pid])
        gauge_token = sampler_mod.register_gauge_source(
            "store.resident_bytes", lambda: 123.0
        )
        silent_token = sampler_mod.register_gauge_source(
            "store.ghost_bytes", lambda: None
        )
        try:
            registry = MetricsRegistry()
            sampler_mod.ResourceSampler(interval=60.0).sample_once(
                registry=registry
            )
            gauges = registry.to_dict()["gauges"]
            assert gauges[f"process.resident_bytes{{pid={pid}}}"] > 0
            assert gauges["store.resident_bytes"] == 123.0
            # A None-returning source skips its sample entirely.
            assert "store.ghost_bytes" not in gauges
        finally:
            sampler_mod.unregister_pids_provider(pids_token)
            sampler_mod.unregister_gauge_source(gauge_token)
            sampler_mod.unregister_gauge_source(silent_token)

    def test_dead_pid_skipped_silently(self):
        token = sampler_mod.register_pids_provider(lambda: [2**22 + 1])
        try:
            sampler_mod.ResourceSampler(interval=60.0).sample_once(
                registry=MetricsRegistry()
            )
        finally:
            sampler_mod.unregister_pids_provider(token)

    def test_invalid_interval_rejected(self):
        with pytest.raises(ValueError):
            sampler_mod.ResourceSampler(interval=0.0)

    def test_start_samples_immediately_and_stop_joins(self):
        with obs.scope(fresh=True) as (metrics, _tracer):
            sampler = sampler_mod.ResourceSampler(interval=30.0)
            with sampler:
                # start() records one pass before the thread ticks, so
                # gauges exist from the first scrape on.
                assert (
                    metrics.to_dict()["gauges"]["process.resident_bytes"] > 0
                )
            assert sampler._thread is None


# ----------------------------------------------------------------------
# Flight recorder
# ----------------------------------------------------------------------
class TestFlightRecorder:
    def test_ring_keeps_only_the_newest_entries(self):
        recorder = FlightRecorder(capacity=3)
        for index in range(7):
            recorder.record_event("tick", index=index)
        events = recorder.snapshot()["events"]
        assert [e["index"] for e in events] == [4, 5, 6]
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)

    def test_attach_captures_closed_spans_until_detach(self):
        with obs.scope(fresh=True):
            recorder = FlightRecorder(capacity=8).attach()
            with obs.span("flight.unit", batch=1):
                pass
            recorder.detach()
            with obs.span("flight.after_detach"):
                pass
        spans = recorder.snapshot()["spans"]
        assert [s["name"] for s in spans] == ["flight.unit"]
        assert spans[0]["args"] == {"batch": 1}
        assert spans[0]["duration_ms"] >= 0.0
        assert spans[0]["pid"] == os.getpid()

    def test_dump_bundle_schema(self, tmp_path):
        with obs.scope(fresh=True) as (metrics, _tracer):
            metrics.counter("annotator.documents").inc()
            recorder = FlightRecorder(capacity=4, dump_dir=tmp_path)
            recorder.record_event("boot", workers=2)
            path = recorder.dump(reason="unit")
            bundle = json.loads(path.read_text())
        assert path.name.startswith("flight-") and path.name.endswith(
            "-unit.json"
        )
        assert bundle["reason"] == "unit"
        assert bundle["pid"] == os.getpid()
        assert bundle["capacity"] == 4
        assert bundle["events"][0]["kind"] == "boot"
        assert bundle["metrics"]["counters"]["annotator.documents"] == 1
        assert bundle["created_unix"] > 0

    def test_sigusr2_dumps_a_bundle(self, tmp_path):
        previous = signal.getsignal(signal.SIGUSR2)
        recorder = FlightRecorder(dump_dir=tmp_path)
        assert recorder.install_signal_handler() is True
        try:
            recorder.record_event("inflight")
            os.kill(os.getpid(), signal.SIGUSR2)
            deadline = time.monotonic() + 5.0
            dumps = []
            while not dumps and time.monotonic() < deadline:
                dumps = list(tmp_path.glob("flight-*-sigusr2.json"))
                time.sleep(0.01)
            assert dumps, "SIGUSR2 did not produce a flight dump"
            bundle = json.loads(dumps[0].read_text())
            assert bundle["reason"] == "sigusr2"
            assert bundle["events"][-1]["kind"] == "inflight"
        finally:
            recorder.uninstall_signal_handler()
        assert signal.getsignal(signal.SIGUSR2) == previous

    def test_crash_hook_dumps_then_chains(self, tmp_path):
        chained = []
        original = sys.excepthook
        sys.excepthook = lambda *args: chained.append(args)
        try:
            recorder = FlightRecorder(dump_dir=tmp_path)
            recorder.install_crash_handler()
            recorder.install_crash_handler()  # idempotent
            error = ValueError("boom")
            sys.excepthook(ValueError, error, None)
            dumps = list(tmp_path.glob("flight-*-crash.json"))
            assert len(dumps) == 1
            bundle = json.loads(dumps[0].read_text())
            assert bundle["events"][-1]["kind"] == "crash"
            assert "boom" in bundle["events"][-1]["error"]
            # The previous hook still ran with the original exception.
            assert len(chained) == 1 and chained[0][1] is error
            recorder.uninstall_crash_handler()
            assert sys.excepthook is not original  # our stub is back
        finally:
            sys.excepthook = original


# ----------------------------------------------------------------------
# Pool live telemetry (shared fixtures mirror tests/test_parallel.py)
# ----------------------------------------------------------------------
needs_shm = pytest.mark.skipif(
    not shared_memory_available(), reason="POSIX shared memory unavailable"
)


@pytest.fixture(scope="module")
def world():
    return generate_world(WorldConfig(num_entities=120, seed=7))


@pytest.fixture(scope="module")
def corpus(world):
    return generate_corpus(world, CorpusConfig(num_pages=30, seed=7))


@pytest.fixture(scope="module")
def annotator(world, corpus):
    vocab = build_vocabulary(corpus)
    counts = EntityCounts.from_corpus(corpus, world.num_entities)
    model = BootlegModel(
        BootlegConfig(num_candidates=4, dropout=0.0),
        world.kb,
        vocab,
        entity_counts=counts.counts,
    )
    model.eval()
    return BootlegAnnotator(
        model,
        vocab,
        world.candidate_map,
        world.kb,
        kgs=[world.kg],
        num_candidates=4,
        batch_size=4,
    )


@pytest.fixture(scope="module")
def texts(corpus, annotator):
    candidates = [
        detokenize(list(s.tokens)) for s in corpus.sentences("test")[:12]
    ]
    kept = [t for t in candidates if annotator.detect_mentions(tokenize(t))]
    assert len(kept) >= 6, "test corpus must yield mention-bearing texts"
    return (kept * 3)[:18]


@contextmanager
def _live_pool(annotator, workers=2):
    """Observed pool shipping a telemetry snapshot after every task."""
    with obs.scope(fresh=True) as (metrics, tracer):
        with compute_dtype(np.float32):
            pool = AnnotatorPool.from_annotator(
                annotator, workers=workers, telemetry_interval=0.0
            )
        assert not pool.serial, "pool fell back to serial unexpectedly"
        try:
            yield pool, metrics
        finally:
            pool.close()


def _wait_until(predicate, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.05)
    return predicate()


@needs_shm
class TestPoolLiveTelemetry:
    def test_worker_series_visible_mid_run(self, annotator, texts):
        with _live_pool(annotator) as (pool, _metrics):
            with compute_dtype(np.float32):
                pool.annotate_batch(texts[:8], chunk_size=2)
            live = pool.live_telemetry()
            assert live, "no periodic worker snapshots reached the owner"
            for labels, snapshot in live:
                assert set(labels) == {"worker"}
                assert any(
                    key.startswith("parallel.pool.chunk_seconds")
                    for key in snapshot.get("histograms", {})
                )
            # The scrape view merges those snapshots under worker labels
            # while the owner registry itself has no worker series yet.
            text = render_prometheus(collect_registry().to_dict())
            assert "parallel_pool_chunk_seconds{" in text
            assert 'worker="' in text
            assert pool.health()["ok"] is True
            assert pool.health()["workers_alive"] == 2
            assert len(pool.worker_pids()) == 2
            # The pool registered itself on the global health registry.
            report = exporter.health.check()
            assert report["components"]["pool"]["ok"] is True
        # Closing unregisters everything again.
        assert "pool" not in exporter.health.check()["components"]

    def test_sigkill_flips_health_unhealthy(self, annotator, texts):
        with _live_pool(annotator) as (pool, _metrics):
            with compute_dtype(np.float32):
                pool.annotate_batch(texts[:4], chunk_size=2)
            victim = pool.worker_pids()[0]
            os.kill(victim, signal.SIGKILL)
            assert _wait_until(lambda: not pool.health()["ok"])
            health = pool.health()
            assert health["workers_alive"] == 1
            assert health["workers"] == 2
            assert exporter.health.check()["ok"] is False

    def test_dead_worker_telemetry_recovered(self, annotator, texts):
        # Regression: a worker SIGKILLed after doing work must still be
        # represented in the merged owner metrics — its last periodic
        # snapshot (interval=0 ships after every task) stands in for the
        # final flush it never sent.
        with _live_pool(annotator) as (pool, metrics):
            with compute_dtype(np.float32):
                pool.annotate_batch(texts[:12], chunk_size=2)
            shipped = {labels["worker"] for labels, _ in pool.live_telemetry()}
            assert shipped, "no worker shipped a periodic snapshot"
            victim = sorted(shipped)[0]
            os.kill(pool.worker_pids()[victim], signal.SIGKILL)
            assert _wait_until(
                lambda: not pool._procs[victim].is_alive()
            )
            pool.close()
            histograms = metrics.to_dict()["histograms"]
            key = f"parallel.pool.chunk_seconds{{worker={victim}}}"
            assert key in histograms, sorted(histograms)
            assert histograms[key]["count"] >= 1

    def test_serial_pool_reports_serial_health(self, annotator):
        pool = AnnotatorPool.from_annotator(annotator, workers=1)
        try:
            assert pool.serial
            assert pool.health() == {"ok": True, "serial": True, "workers": 0}
            assert pool.live_telemetry() == []
            assert pool.worker_pids() == []
        finally:
            pool.close()

    def test_unobserved_pool_registers_nothing(self, annotator):
        assert obs.enabled is False
        with compute_dtype(np.float32):
            pool = AnnotatorPool.from_annotator(annotator, workers=2)
        try:
            assert "pool" not in exporter.health.check()["components"]
            assert pool.live_telemetry() == []
        finally:
            pool.close()


# ----------------------------------------------------------------------
# CLI wiring: --serve-metrics / --sample-interval / --flight-dir
# ----------------------------------------------------------------------
class TestCliLiveFlags:
    @pytest.fixture(scope="class")
    def artifacts(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("cli_live")
        world_path = root / "world.npz"
        corpus_path = root / "corpus.npz"
        model_path = root / "model.npz"
        assert cli.main([
            "generate-world", "--entities", "80", "--out", str(world_path),
        ]) == 0
        assert cli.main([
            "generate-corpus", "--world", str(world_path), "--pages", "25",
            "--out", str(corpus_path),
        ]) == 0
        assert cli.main([
            "train", "--world", str(world_path), "--corpus", str(corpus_path),
            "--epochs", "1", "--out", str(model_path),
        ]) == 0
        return root, world_path, corpus_path, model_path

    def test_evaluate_serves_and_tears_down(self, artifacts, capsys):
        root, world_path, corpus_path, model_path = artifacts
        sigusr2_before = signal.getsignal(signal.SIGUSR2)
        code = cli.main([
            "evaluate", "--world", str(world_path),
            "--corpus", str(corpus_path), "--model", str(model_path),
            "--split", "val", "--workers", "2",
            "--serve-metrics", "0", "--sample-interval", "0.05",
            "--flight-dir", str(root / "flight"),
        ])
        assert code == 0
        err = capsys.readouterr().err
        assert "telemetry endpoint at http://127.0.0.1:" in err
        # Everything live is torn down before the CLI returns: obs
        # disabled, probes and sources unregistered, SIGUSR2 restored.
        assert obs.enabled is False
        assert exporter.health.check()["components"] == {}
        assert exporter._live_sources == {}
        assert sampler_mod._gauge_sources == {}
        assert sampler_mod._pids_providers == {}
        assert signal.getsignal(signal.SIGUSR2) == sigusr2_before

    def test_flags_off_by_default(self, artifacts):
        root, world_path, corpus_path, model_path = artifacts
        code = cli.main([
            "evaluate", "--world", str(world_path),
            "--corpus", str(corpus_path), "--model", str(model_path),
            "--split", "val",
        ])
        assert code == 0
        assert obs.enabled is False
        assert exporter._live_sources == {}
