"""Tests for run reports and cross-process telemetry aggregation.

Covers slice scoring, the RunReport manifest (build/save/load/HTML),
report diffing with regression gating, the pool-side telemetry merge
(per-worker histograms + one multi-pid Chrome trace), and the CLI
surface (``repro evaluate --report-out/--report-html`` and ``repro
report show/html/diff``). ``make check`` reruns this module under
``REPRO_PARALLEL_START_METHOD=spawn``; everything crossing the process
boundary must survive the stricter pickling contract.
"""

import json

import numpy as np
import pytest

import repro.obs as obs
from repro import cli
from repro.core import BootlegConfig, BootlegModel
from repro.corpus import (
    CorpusConfig,
    EntityCounts,
    NedDataset,
    build_vocabulary,
    generate_corpus,
)
from repro.errors import ReproError
from repro.eval.predictions import MentionPrediction
from repro.kb import WorldConfig, generate_world
from repro.nn import compute_dtype
from repro.obs.metrics import parse_metric_key
from repro.obs.report import (
    RunReport,
    SliceScore,
    diff_reports,
    emit_slice_gauges,
    regressions,
    render_html,
    score_slices,
)
from repro.parallel import AnnotatorPool, shared_memory_available

needs_shm = pytest.mark.skipif(
    not shared_memory_available(), reason="POSIX shared memory unavailable"
)


def _prediction(sentence_id, mention_index, correct, gold=1):
    predicted = gold if correct else gold + 1
    return MentionPrediction(
        sentence_id=sentence_id,
        mention_index=mention_index,
        surface="m",
        gold_entity_id=gold,
        predicted_entity_id=predicted,
        candidate_ids=np.array([gold, predicted], dtype=np.int64),
        candidate_scores=np.array([0.6, 0.4]),
        evaluable=True,
        is_weak=False,
    )


def _outcome_records(flags, gold=1):
    """One prediction per flag; flag == True means correct."""
    return [
        _prediction(i, 0, bool(flag), gold=gold)
        for i, flag in enumerate(flags)
    ]


def _slice_from_records(name, records):
    scores = score_slices(records, num_samples=200)
    score = scores["all"]
    score.name = name
    return score


def _report(name, slices, metrics=None):
    return RunReport(
        name=name,
        config={},
        seed=0,
        git_sha="",
        created=0.0,
        wall_seconds=1.0,
        environment={},
        metrics=metrics or {},
        slices=slices,
    )


# ----------------------------------------------------------------------
# Slice scoring
# ----------------------------------------------------------------------
class TestScoreSlices:
    def test_all_slice_and_outcomes(self):
        records = _outcome_records([True] * 8 + [False] * 2)
        scores = score_slices(records, num_samples=100)
        assert set(scores) == {"all"}
        score = scores["all"]
        assert score.num_mentions == 10
        assert score.f1 == pytest.approx(80.0, abs=0.01)
        assert score.low <= score.f1 <= score.high
        # Outcome vector keeps the (sentence_id, mention_index, correct)
        # pairing keys the paired bootstrap needs.
        assert score.outcomes[0] == [0, 0, 1]
        assert score.outcomes[-1] == [9, 0, 0]

    def test_popularity_buckets(self):
        counts = EntityCounts(np.array([0, 1, 5000], dtype=np.int64))
        assert counts.bucket_of(0) == "unseen"
        assert counts.bucket_of(1) == "tail"
        assert counts.bucket_of(2) == "head"
        records = (
            _outcome_records([True, True], gold=2)
            + [_prediction(10, 0, True, gold=1), _prediction(11, 0, False, gold=0)]
        )
        scores = score_slices(records, counts=counts, num_samples=100)
        assert {"all", "head", "tail", "unseen"} <= set(scores)
        assert scores["head"].num_mentions == 2
        assert scores["tail"].f1 == pytest.approx(100.0, abs=0.01)
        assert scores["unseen"].f1 == pytest.approx(0.0, abs=0.01)

    def test_emit_slice_gauges(self):
        records = _outcome_records([True] * 4)
        scores = score_slices(records, num_samples=100)
        with obs.scope() as (metrics, _):
            emit_slice_gauges(scores)
            gauges = metrics.to_dict()["gauges"]
        assert gauges["eval.slice_f1{slice=all}"] == pytest.approx(100.0)
        assert gauges["eval.slice_mentions{slice=all}"] == 4.0


# ----------------------------------------------------------------------
# RunReport manifest
# ----------------------------------------------------------------------
class TestRunReport:
    def test_build_records_manifest_and_gauges(self):
        records = _outcome_records([True] * 6 + [False] * 2)
        with obs.scope():
            obs.metrics.counter("infer.batches").inc(3)
            report = RunReport.build(
                name="evaluate:test",
                records=records,
                config={"split": "test"},
                seed=7,
                wall_seconds=1.5,
            )
        assert report.name == "evaluate:test"
        assert report.seed == 7
        assert report.config == {"split": "test"}
        assert report.environment["numpy"] == np.__version__
        assert report.created > 0
        # Slice gauges are emitted before the metrics snapshot is taken,
        # so the snapshot inside the report already carries them.
        assert report.metrics["counters"]["infer.batches"] == 3
        assert "eval.slice_f1{slice=all}" in report.metrics["gauges"]
        assert report.slices["all"].num_mentions == 8

    def test_build_without_obs_scope(self):
        report = RunReport.build(
            name="bare", records=_outcome_records([True, False])
        )
        assert report.metrics == {}
        assert report.slices["all"].num_mentions == 2

    def test_save_load_round_trip(self, tmp_path):
        records = _outcome_records([True] * 5 + [False] * 3)
        report = RunReport.build(name="rt", records=records, seed=3)
        path = tmp_path / "report.json"
        report.save(path)
        loaded = RunReport.load(path)
        assert loaded.name == "rt"
        assert loaded.seed == 3
        assert loaded.slices["all"].f1 == pytest.approx(report.slices["all"].f1)
        assert loaded.slices["all"].outcomes == report.slices["all"].outcomes

    def test_load_rejects_non_reports(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(ReproError):
            RunReport.load(bad)
        not_report = tmp_path / "metrics.json"
        not_report.write_text(json.dumps({"counters": {}}))
        with pytest.raises(ReproError, match="slices"):
            RunReport.load(not_report)

    def test_ordered_slices(self):
        slices = {
            name: _slice_from_records(name, _outcome_records([True]))
            for name in ("kg_relation", "tail", "all", "entity")
        }
        report = _report("order", slices)
        assert [s.name for s in report.ordered_slices()] == [
            "all", "tail", "entity", "kg_relation",
        ]

    def test_html_dashboard(self, tmp_path):
        records = _outcome_records([True] * 4 + [False])
        with obs.scope():
            obs.metrics.counter("infer.batches").inc()
            obs.metrics.histogram("infer.batch_seconds").observe(0.25)
            report = RunReport.build(name="dash<run>", records=records)
        path = tmp_path / "report.html"
        report.to_html(path)
        document = path.read_text()
        assert document.startswith("<!DOCTYPE html>")
        # Self-contained: inline style, no external fetches.
        assert "<style>" in document
        assert "http" not in document.split("</style>")[1].split("<body>")[0]
        assert "dash&lt;run&gt;" in document, "run name must be escaped"
        assert "Slice F1" in document
        assert "infer.batch_seconds" in document
        # Same document via the pure renderer.
        assert render_html(report) == document


# ----------------------------------------------------------------------
# Diffing + regression gating
# ----------------------------------------------------------------------
class TestDiffReports:
    def test_identical_reports_no_regressions(self):
        records = _outcome_records([True] * 30 + [False] * 10)
        report = _report("base", {"all": _slice_from_records("all", records)})
        deltas = diff_reports(report, report)
        assert len(deltas) == 1
        assert deltas[0].method == "paired-bootstrap"
        assert deltas[0].delta == pytest.approx(0.0)
        assert not deltas[0].significant
        assert regressions(deltas) == []

    def test_injected_regression_is_gated(self):
        old = _report(
            "old",
            {"all": _slice_from_records("all", _outcome_records([True] * 200))},
        )
        new = _report(
            "new",
            {
                "all": _slice_from_records(
                    "all", _outcome_records([True] * 140 + [False] * 60)
                )
            },
        )
        deltas = diff_reports(old, new)
        (delta,) = deltas
        assert delta.method == "paired-bootstrap"
        assert delta.delta < 0
        assert delta.significant
        assert delta.regression
        assert regressions(deltas) == [delta]

    def test_improvement_is_significant_but_not_regression(self):
        old = _report(
            "old",
            {
                "all": _slice_from_records(
                    "all", _outcome_records([True] * 140 + [False] * 60)
                )
            },
        )
        new = _report(
            "new",
            {"all": _slice_from_records("all", _outcome_records([True] * 200))},
        )
        (delta,) = diff_reports(old, new)
        assert delta.delta > 0
        assert delta.significant
        assert not delta.regression

    def test_slice_missing_from_new_report_is_gated(self):
        score = _slice_from_records("tail", _outcome_records([True] * 5))
        old = _report("old", {"tail": score})
        new = _report("new", {})
        (delta,) = diff_reports(old, new)
        assert delta.method == "missing"
        assert delta.regression
        # A slice that only *appears* in the new report is not gated.
        (delta,) = diff_reports(new, old)
        assert delta.method == "missing"
        assert not delta.regression

    def test_interval_overlap_fallback_without_outcomes(self):
        def bare(f1, low, high):
            return SliceScore(
                name="all", f1=f1, low=low, high=high, num_mentions=50
            )

        old = _report("old", {"all": bare(90.0, 85.0, 95.0)})
        overlapping = _report("new", {"all": bare(88.0, 83.0, 93.0)})
        (delta,) = diff_reports(old, overlapping)
        assert delta.method == "interval-overlap"
        assert not delta.significant
        disjoint = _report("new", {"all": bare(60.0, 55.0, 65.0)})
        (delta,) = diff_reports(old, disjoint)
        assert delta.method == "interval-overlap"
        assert delta.significant
        assert delta.regression


# ----------------------------------------------------------------------
# Pool-side aggregation: per-worker metrics, one multi-pid trace
# ----------------------------------------------------------------------
@needs_shm
class TestPoolAggregation:
    @pytest.fixture(scope="class")
    def pooled_run(self):
        world = generate_world(WorldConfig(num_entities=120, seed=7))
        corpus = generate_corpus(world, CorpusConfig(num_pages=30, seed=7))
        vocab = build_vocabulary(corpus)
        counts = EntityCounts.from_corpus(corpus, world.num_entities)
        model = BootlegModel(
            BootlegConfig(num_candidates=4, dropout=0.0),
            world.kb,
            vocab,
            entity_counts=counts.counts,
        )
        model.eval()
        dataset = NedDataset(
            corpus, "test", vocab, world.candidate_map, 4, kgs=[world.kg]
        )
        with obs.scope():
            with compute_dtype(np.float32):
                with AnnotatorPool.from_model(model, workers=2) as pool:
                    assert not pool.serial
                    records = pool.predict_batches(dataset.batches(4))
            snapshot = obs.metrics.to_dict()
            trace = obs.tracer.to_chrome_trace()
        assert records, "pooled prediction produced no records"
        return snapshot, trace

    def test_every_worker_ships_chunk_histograms(self, pooled_run):
        snapshot, _ = pooled_run
        workers = set()
        observations = 0
        for key, summary in snapshot["histograms"].items():
            name, labels = parse_metric_key(key)
            if name == "parallel.pool.chunk_seconds" and "worker" in labels:
                workers.add(labels["worker"])
                observations += summary["count"]
        assert workers == {"0", "1"}
        assert observations > 0

    def test_worker_chunk_counters_merge(self, pooled_run):
        snapshot, _ = pooled_run
        counters = snapshot["counters"]
        chunk_counts = {
            parse_metric_key(key)[1]["worker"]: value
            for key, value in counters.items()
            if parse_metric_key(key)[0] == "parallel.pool.chunks"
            and "worker" in parse_metric_key(key)[1]
        }
        assert set(chunk_counts) == {"0", "1"}
        assert all(value > 0 for value in chunk_counts.values())

    def test_trace_spans_multiple_pids(self, pooled_run):
        _, trace = pooled_run
        events = trace["traceEvents"]
        pids = {event["pid"] for event in events}
        assert len(pids) >= 2, "merged trace must span owner + workers"
        names = {event["name"] for event in events}
        assert "parallel.pool.chunk" in names
        assert "parallel.predict_batches" in names
        # Worker chunk spans carry worker pids, not the owner's.
        owner_pid = next(
            event["pid"]
            for event in events
            if event["name"] == "parallel.predict_batches"
        )
        chunk_pids = {
            event["pid"]
            for event in events
            if event["name"] == "parallel.pool.chunk"
        }
        assert chunk_pids and owner_pid not in chunk_pids


# ----------------------------------------------------------------------
# CLI: report export, dashboards, diff gating
# ----------------------------------------------------------------------
class TestCliReport:
    @pytest.fixture(scope="class")
    def artifacts(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("cli_report")
        world_path = root / "world.npz"
        corpus_path = root / "corpus.npz"
        model_path = root / "model.npz"
        assert cli.main([
            "generate-world", "--entities", "80", "--out", str(world_path),
        ]) == 0
        assert cli.main([
            "generate-corpus", "--world", str(world_path), "--pages", "25",
            "--out", str(corpus_path),
        ]) == 0
        assert cli.main([
            "train", "--world", str(world_path), "--corpus", str(corpus_path),
            "--epochs", "1", "--out", str(model_path),
            "--report-out", str(root / "train_report.json"),
        ]) == 0
        return root, world_path, corpus_path, model_path

    def test_train_report(self, artifacts):
        root, _, _, _ = artifacts
        payload = json.loads((root / "train_report.json").read_text())
        assert payload["name"].startswith("train:")
        assert payload["train"]["epochs"]
        assert "epoch_seconds" in payload["train"]
        assert payload["metrics"]["counters"]["train.steps"] > 0

    @needs_shm
    def test_evaluate_pooled_full_bundle(self, artifacts):
        root, world_path, corpus_path, model_path = artifacts
        report_json = root / "run_report.json"
        report_html = root / "run_report.html"
        metrics_json = root / "run_metrics.json"
        trace_json = root / "run_trace.json"
        code = cli.main([
            "evaluate", "--world", str(world_path),
            "--corpus", str(corpus_path), "--model", str(model_path),
            "--split", "test", "--workers", "2", "--batch-size", "2",
            "--report-out", str(report_json),
            "--report-html", str(report_html),
            "--metrics-out", str(metrics_json),
            "--trace-out", str(trace_json),
        ])
        assert code == 0
        assert obs.enabled is False, "CLI must disable obs after export"

        # Exported metrics carry per-worker chunk histograms for every
        # worker, merged from the workers' shipped snapshots.
        metrics = json.loads(metrics_json.read_text())
        workers = {
            parse_metric_key(key)[1].get("worker")
            for key in metrics["histograms"]
            if parse_metric_key(key)[0] == "parallel.pool.chunk_seconds"
        }
        assert {"0", "1"} <= workers
        assert "eval.slice_f1{slice=all}" in metrics["gauges"]

        # One Chrome trace spanning at least owner + one worker pid.
        trace = json.loads(trace_json.read_text())
        pids = {event["pid"] for event in trace["traceEvents"]}
        assert len(pids) >= 2

        # The report round-trips and carries the popularity slices.
        report = RunReport.load(report_json)
        assert report.name == "evaluate:test"
        assert report.config["workers"] == 2
        assert "all" in report.slices
        assert report.slices["all"].outcomes
        assert report.wall_seconds > 0
        document = report_html.read_text()
        assert document.startswith("<!DOCTYPE html>")
        assert "Slice F1" in document

    def test_report_show_and_html(self, artifacts, tmp_path, capsys):
        root, _, _, _ = artifacts
        report = _report(
            "show-me",
            {"all": _slice_from_records("all", _outcome_records([True] * 4))},
        )
        path = tmp_path / "r.json"
        report.save(path)
        assert cli.main(["report", "show", str(path)]) == 0
        out = capsys.readouterr().out
        assert "show-me" in out
        assert "all" in out
        html_path = tmp_path / "r.html"
        assert cli.main(["report", "html", str(path), str(html_path)]) == 0
        assert html_path.read_text().startswith("<!DOCTYPE html>")

    def test_report_diff_gate_exit_codes(self, tmp_path, capsys):
        base = _report(
            "base",
            {"all": _slice_from_records("all", _outcome_records([True] * 200))},
        )
        regressed = _report(
            "regressed",
            {
                "all": _slice_from_records(
                    "all", _outcome_records([True] * 140 + [False] * 60)
                )
            },
        )
        base_path = tmp_path / "base.json"
        regressed_path = tmp_path / "regressed.json"
        base.save(base_path)
        regressed.save(regressed_path)

        # Self-diff: clean gate.
        assert cli.main([
            "report", "diff", str(base_path), str(base_path),
            "--fail-on-regression",
        ]) == 0
        capsys.readouterr()

        # Injected regression: reported, but exit 0 without the gate flag.
        assert cli.main([
            "report", "diff", str(base_path), str(regressed_path),
        ]) == 0
        captured = capsys.readouterr()
        assert "REGRESSION" in captured.out

        # With the gate armed the same diff fails CI.
        assert cli.main([
            "report", "diff", str(base_path), str(regressed_path),
            "--fail-on-regression",
        ]) == 1

        # An improvement never trips the gate.
        assert cli.main([
            "report", "diff", str(regressed_path), str(base_path),
            "--fail-on-regression",
        ]) == 0
