"""Tests for mention detection and end-to-end linking evaluation."""

import numpy as np
import pytest

from repro.candgen import (
    DetectedMention,
    MentionDetector,
    evaluate_detection,
    evaluate_linking,
    link_sentences,
    mine_candidate_map,
)
from repro.core import BootlegConfig, BootlegModel, TrainConfig, Trainer
from repro.corpus import (
    CorpusConfig,
    EntityCounts,
    NedDataset,
    build_vocabulary,
    generate_corpus,
)
from repro.corpus.document import Mention, Sentence
from repro.errors import ConfigError
from repro.kb import CandidateMap, WorldConfig, generate_world


@pytest.fixture(scope="module")
def world():
    return generate_world(WorldConfig(num_entities=200, seed=23))


@pytest.fixture(scope="module")
def corpus(world):
    return generate_corpus(world, CorpusConfig(num_pages=100, seed=23))


def small_map():
    cmap = CandidateMap()
    cmap.add("lincoln", 0, 5.0)
    cmap.add("lincoln", 1, 1.0)
    cmap.add("abraham lincoln", 0, 3.0)
    cmap.add("ford", 2, 2.0)
    cmap.add("the", 9, 1.0)  # stopword collision
    return cmap


class TestMentionDetector:
    def test_detects_known_aliases(self):
        detector = MentionDetector(small_map())
        detections = detector.detect(["we", "saw", "lincoln", "today"])
        assert detections == [DetectedMention(2, 3, "lincoln")]

    def test_longest_match_preferred(self):
        detector = MentionDetector(small_map(), expand_boundaries=False)
        detections = detector.detect(["abraham", "lincoln", "spoke"])
        assert detections[0].surface == "abraham lincoln"
        assert detections[0].span == (0, 2)

    def test_boundary_expansion(self):
        detector = MentionDetector(small_map(), expand_boundaries=True)
        # Scanner at "lincoln" alone would match length-1; expansion to the
        # left absorbs "abraham".
        detections = detector.detect(["x", "abraham", "lincoln"])
        # Greedy scan finds "abraham lincoln" at position 1 directly.
        assert detections[0].surface == "abraham lincoln"

    def test_stopwords_never_match(self):
        detector = MentionDetector(small_map())
        assert detector.detect(["the", "the", "the"]) == []

    def test_min_prior_mass_filters(self):
        detector = MentionDetector(small_map(), min_prior_mass=10.0)
        assert detector.detect(["ford"]) == []  # total mass 2.0 < 10
        detector = MentionDetector(small_map(), min_prior_mass=1.0)
        assert detector.detect(["ford"])

    def test_non_overlapping(self):
        detector = MentionDetector(small_map())
        detections = detector.detect(["lincoln", "lincoln"])
        assert [d.span for d in detections] == [(0, 1), (1, 2)]

    def test_invalid_max_span(self):
        with pytest.raises(ConfigError):
            MentionDetector(small_map(), max_span=0)

    def test_recall_on_generated_corpus(self, world, corpus):
        cmap = mine_candidate_map(corpus, world.kb)
        detector = MentionDetector(cmap)
        sentences = corpus.sentences("val")
        detections = {
            s.sentence_id: detector.detect(s.tokens) for s in sentences
        }
        prf = evaluate_detection(detections, sentences)
        # Every gold surface is a known alias, so recall must be high;
        # precision is lower (aliases also appear unlinked).
        assert prf.recall > 0.9


class TestDetectionScoring:
    def make_sentence(self):
        return Sentence(
            7, 0, ["a", "x", "b", "y"],
            [Mention(1, 2, "x", 10), Mention(3, 4, "y", 11)],
        )

    def test_detection_prf(self):
        sentence = self.make_sentence()
        detections = {
            7: [DetectedMention(1, 2, "x"), DetectedMention(0, 1, "a")]
        }
        prf = evaluate_detection(detections, [sentence])
        assert prf.num_correct == 1
        assert prf.precision == pytest.approx(0.5)
        assert prf.recall == pytest.approx(0.5)

    def test_linking_requires_span_and_entity(self):
        sentence = self.make_sentence()
        predictions = {
            7: [((1, 2), 10), ((3, 4), 99)]  # first right, second wrong entity
        }
        prf = evaluate_linking(predictions, [sentence])
        assert prf.num_correct == 1
        assert prf.precision == pytest.approx(0.5)
        assert prf.recall == pytest.approx(0.5)

    def test_linking_empty(self):
        prf = evaluate_linking({}, [self.make_sentence()])
        assert prf.f1 == 0.0


class TestEndToEndLinking:
    def test_link_sentences_pipeline(self, world, corpus):
        cmap = mine_candidate_map(corpus, world.kb)
        vocab = build_vocabulary(corpus)
        counts = EntityCounts.from_corpus(corpus, world.num_entities)
        train = NedDataset(corpus, "train", vocab, cmap, 4, kgs=[world.kg])
        model = BootlegModel(
            BootlegConfig(num_candidates=4), world.kb, vocab,
            entity_counts=counts.counts,
        )
        Trainer(
            model, train,
            TrainConfig(epochs=6, batch_size=32, learning_rate=3e-3),
        ).train()
        sentences = corpus.sentences("val")[:60]
        links = link_sentences(
            model, sentences, vocab, cmap, 4, kgs=[world.kg]
        )
        assert links, "pipeline should link something"
        prf = evaluate_linking(links, sentences)
        # End-to-end linking: recall well above zero and precision finite;
        # detection noise means P != R in general.
        assert prf.recall > 0.3
        assert prf.num_predicted > prf.num_correct > 0
