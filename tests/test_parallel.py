"""Tests for repro.parallel: shm payload plane, annotator pool, prefetch.

The determinism tests are the heart of this module: the pool must be a
pure throughput optimization, returning byte-identical results to the
serial path for any worker count and any chunking. ``make check`` runs
this module a second time under ``REPRO_PARALLEL_START_METHOD=spawn`` to
enforce the stricter pickling contract.
"""

import dataclasses
import queue
import threading

import numpy as np
import pytest

import repro.obs as obs
from repro.core import (
    BootlegAnnotator,
    BootlegConfig,
    BootlegModel,
    TrainConfig,
    Trainer,
)
from repro.core.trainer import predict_batches as serial_predict_batches
from repro.corpus import (
    CollateBuffers,
    CorpusConfig,
    EntityCounts,
    NedDataset,
    build_vocabulary,
    detokenize,
    generate_corpus,
)
from repro.corpus.tokenizer import tokenize
from repro.errors import ConfigError, ParallelError
from repro.kb import WorldConfig, generate_world
from repro.nn import compute_dtype
from repro.parallel import (
    AnnotatorPool,
    AttachedArrays,
    PrefetchIterator,
    SharedArrayStore,
    predict_batches,
    prefetch_batches,
    shared_memory_available,
)
from repro.parallel.pool import _Task
from repro.parallel.shm import _ALIGNMENT

pytestmark = pytest.mark.skipif(
    not shared_memory_available(), reason="POSIX shared memory unavailable"
)


# ----------------------------------------------------------------------
# Shared fixtures: one small world, model, annotator, pool per module
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def world():
    return generate_world(WorldConfig(num_entities=120, seed=7))


@pytest.fixture(scope="module")
def corpus(world):
    return generate_corpus(world, CorpusConfig(num_pages=30, seed=7))


@pytest.fixture(scope="module")
def vocab(corpus):
    return build_vocabulary(corpus)


@pytest.fixture(scope="module")
def model(world, corpus, vocab):
    counts = EntityCounts.from_corpus(corpus, world.num_entities)
    model = BootlegModel(
        BootlegConfig(num_candidates=4, dropout=0.0),
        world.kb,
        vocab,
        entity_counts=counts.counts,
    )
    model.eval()
    return model


@pytest.fixture(scope="module")
def annotator(world, vocab, model):
    return BootlegAnnotator(
        model,
        vocab,
        world.candidate_map,
        world.kb,
        kgs=[world.kg],
        num_candidates=4,
        batch_size=4,
    )


@pytest.fixture(scope="module")
def texts(corpus, annotator):
    # Mention-bearing texts only: zero-mention documents are dropped by
    # NedDataset, which would shift batch boundaries between serial and
    # chunked runs (documented caveat in docs/PARALLEL.md).
    candidates = [
        detokenize(list(s.tokens)) for s in corpus.sentences("test")[:12]
    ]
    kept = [t for t in candidates if annotator.detect_mentions(tokenize(t))]
    assert len(kept) >= 6, "test corpus must yield mention-bearing texts"
    return (kept * 3)[:18]


@pytest.fixture(scope="module")
def pool(annotator):
    with compute_dtype(np.float32):
        with AnnotatorPool.from_annotator(annotator, workers=2) as pool:
            assert not pool.serial, "pool fell back to serial unexpectedly"
            yield pool


def annotations_equal(a, b):
    assert len(a) == len(b)
    for doc_a, doc_b in zip(a, b):
        assert [dataclasses.asdict(m) for m in doc_a] == [
            dataclasses.asdict(m) for m in doc_b
        ]


# ----------------------------------------------------------------------
# Shared-memory payload plane
# ----------------------------------------------------------------------
class TestSharedArrayStore:
    def test_export_attach_roundtrip(self):
        rng = np.random.default_rng(0)
        arrays = {
            "a": rng.normal(size=(7, 3)),
            "b": np.arange(11, dtype=np.int64),
            "c": rng.normal(size=(2, 5, 4)).astype(np.float32),
        }
        with SharedArrayStore.export(arrays) as store:
            manifest = store.manifest
            assert manifest.keys() == ["a", "b", "c"]
            for entry in manifest.entries:
                assert entry.offset % _ALIGNMENT == 0
            attached = AttachedArrays(manifest, unregister_tracker=False)
            for key, original in arrays.items():
                view = attached[key]
                assert view.dtype == original.dtype
                assert np.array_equal(view, original)
                assert not view.flags.writeable
                with pytest.raises(ValueError):
                    view[...] = 0
            attached.close()

    def test_attach_missing_block_raises(self):
        with SharedArrayStore.export({"x": np.zeros(3)}) as store:
            manifest = store.manifest
        # Store closed and unlinked: attaching must fail loudly.
        with pytest.raises(ParallelError):
            AttachedArrays(manifest, unregister_tracker=False)

    def test_manifest_is_picklable(self):
        import pickle

        with SharedArrayStore.export({"x": np.ones((2, 2))}) as store:
            clone = pickle.loads(pickle.dumps(store.manifest))
            assert clone == store.manifest


# ----------------------------------------------------------------------
# Annotator pool determinism
# ----------------------------------------------------------------------
class TestAnnotatorPool:
    def test_annotate_identical_to_serial(self, annotator, texts, pool):
        with compute_dtype(np.float32):
            serial = annotator.annotate_batch(texts)
            parallel = pool.annotate_batch(texts)
        annotations_equal(serial, parallel)

    def test_annotate_identical_under_uneven_chunks(
        self, annotator, texts, pool
    ):
        with compute_dtype(np.float32):
            serial = annotator.annotate_batch(texts)
            # chunk_size=7 rounds up to 8 (a batch_size=4 multiple);
            # 18 texts split 8/8/2 — maximally uneven final chunk.
            parallel = pool.annotate_batch(texts, chunk_size=7)
        annotations_equal(serial, parallel)
        with compute_dtype(np.float32):
            tiny = pool.annotate_batch(texts, chunk_size=1)
        annotations_equal(serial, tiny)

    def test_empty_input_returns_empty(self, pool):
        assert pool.annotate_batch([]) == []

    def test_predict_batches_identical_to_serial(self, world, vocab, model, pool):
        dataset = NedDataset(
            generate_corpus(world, CorpusConfig(num_pages=10, seed=11)),
            "test",
            vocab,
            world.candidate_map,
            4,
            kgs=[world.kg],
        )
        with compute_dtype(np.float32):
            serial = serial_predict_batches(model, dataset.batches(4))
            parallel = pool.predict_batches(dataset.batches(4))
        assert len(serial) == len(parallel)
        for a, b in zip(serial, parallel):
            assert a.sentence_id == b.sentence_id
            assert a.mention_index == b.mention_index
            assert a.predicted_entity_id == b.predicted_entity_id
            assert np.array_equal(a.candidate_scores, b.candidate_scores)
            assert np.array_equal(a.candidate_ids, b.candidate_ids)

    def test_module_level_predict_falls_back_serial(self, world, vocab, model):
        dataset = NedDataset(
            generate_corpus(world, CorpusConfig(num_pages=10, seed=13)),
            "test",
            vocab,
            world.candidate_map,
            4,
            kgs=[world.kg],
        )
        with compute_dtype(np.float32):
            serial = serial_predict_batches(model, dataset.batches(4))
            fallback = predict_batches(model, dataset.batches(4), workers=1)
        assert len(serial) == len(fallback)
        for a, b in zip(serial, fallback):
            assert np.array_equal(a.candidate_scores, b.candidate_scores)

    def test_workers_leq_one_is_serial_mode(self, annotator, texts):
        with compute_dtype(np.float32):
            pool = AnnotatorPool.from_annotator(annotator, workers=1)
            try:
                assert pool.serial
                serial = annotator.annotate_batch(texts[:4])
                result = pool.annotate_batch(texts[:4])
            finally:
                pool.close()
        annotations_equal(serial, result)

    def test_mention_spans_validated_and_honored(self, annotator, texts, pool):
        spans = [None] * len(texts)
        with compute_dtype(np.float32):
            serial = annotator.annotate_batch(texts, spans)
            parallel = pool.annotate_batch(texts, spans, chunk_size=5)
        annotations_equal(serial, parallel)


class TestPoolFaultTolerance:
    def test_crash_respawns_and_retries_then_errors(
        self, annotator, texts, pool
    ):
        # A task that hard-kills its worker: retried once on the
        # respawned worker, then surfaced as a structured error.
        with pytest.raises(ParallelError) as excinfo:
            pool._execute([_Task(0, "crash", None)])
        assert 0 in excinfo.value.task_errors
        assert "retry budget" in excinfo.value.task_errors[0]
        # The pool must remain fully usable afterwards.
        with compute_dtype(np.float32):
            serial = annotator.annotate_batch(texts[:6])
            parallel = pool.annotate_batch(texts[:6], chunk_size=4)
        annotations_equal(serial, parallel)

    def test_task_exception_is_structured_not_retried(self, pool):
        with pytest.raises(ParallelError) as excinfo:
            pool._execute([_Task(0, "no-such-kind", None)])
        assert "unknown task kind" in excinfo.value.task_errors[0]

    def test_pool_without_source_raises(self):
        with pytest.raises(ParallelError):
            AnnotatorPool(2)


# ----------------------------------------------------------------------
# Empty-input guard on the serial annotator (regression)
# ----------------------------------------------------------------------
class TestEmptyAnnotateGuard:
    def test_empty_returns_empty_without_model_or_metrics(self, annotator):
        real_model = annotator.model
        annotator.model = None  # any model touch would AttributeError
        try:
            with obs.scope(fresh=True) as (metrics, tracer):
                assert annotator.annotate_batch([]) == []
                snapshot = metrics.to_dict()
        finally:
            annotator.model = real_model
        assert "annotator.documents" not in snapshot["counters"]
        assert "infer.batch_seconds" not in snapshot["histograms"]

    def test_span_count_mismatch_still_raises(self, annotator):
        with pytest.raises(ConfigError):
            annotator.annotate_batch([], mention_spans=[[(0, 1)]])


# ----------------------------------------------------------------------
# Prefetching training pipeline
# ----------------------------------------------------------------------
class TestPrefetch:
    def test_batches_identical_to_inline(self, world, vocab, dataset_small):
        rng_a = np.random.default_rng(5)
        rng_b = np.random.default_rng(5)
        inline = list(dataset_small.batches(4, rng_a))
        # Prefetched batches alias a rotating buffer ring, so each one
        # must be compared while current rather than hoarded in a list.
        seen = 0
        with prefetch_batches(dataset_small, 4, rng_b, depth=2) as stream:
            for a, b in zip(inline, stream):
                assert np.array_equal(a.token_ids, b.token_ids)
                assert np.array_equal(a.candidate_ids, b.candidate_ids)
                assert np.array_equal(a.gold_candidate, b.gold_candidate)
                for adj_a, adj_b in zip(a.adjacencies, b.adjacencies):
                    assert np.array_equal(adj_a, adj_b)
                seen += 1
            assert seen == len(inline)
            with pytest.raises(StopIteration):
                next(stream)

    def test_training_bit_identical_with_prefetch(self, world, corpus, vocab):
        counts = EntityCounts.from_corpus(corpus, world.num_entities)
        dataset = NedDataset(
            corpus, "train", vocab, world.candidate_map, 4, kgs=[world.kg]
        )

        def run(prefetch):
            model = BootlegModel(
                BootlegConfig(num_candidates=4),
                world.kb,
                vocab,
                entity_counts=counts.counts,
            )
            Trainer(
                model,
                dataset,
                TrainConfig(
                    epochs=1, batch_size=8, seed=5, prefetch_batches=prefetch
                ),
            ).train()
            return model.state_dict()

        state_inline = run(0)
        state_prefetch = run(2)
        assert set(state_inline) == set(state_prefetch)
        for key in state_inline:
            assert np.array_equal(state_inline[key], state_prefetch[key]), key

    def test_producer_exception_propagates(self):
        def failing():
            yield 1
            raise RuntimeError("collation exploded")

        with PrefetchIterator(failing(), depth=2) as stream:
            assert next(stream) == 1
            with pytest.raises(RuntimeError, match="collation exploded"):
                next(stream)

    def test_early_close_joins_producer(self):
        release = threading.Event()

        def slow():
            for i in range(100):
                release.wait(0.01)
                yield i

        stream = PrefetchIterator(slow(), depth=1)
        assert next(stream) == 0
        release.set()
        stream.close()  # must not hang on the full queue
        assert not stream._thread.is_alive()

    def test_hit_and_starve_counters(self, dataset_small):
        with obs.scope(fresh=True) as (metrics, tracer):
            with prefetch_batches(dataset_small, 4, depth=2) as stream:
                batches = list(stream)
        assert batches
        snapshot = metrics.to_dict()["counters"]
        hits = snapshot.get("parallel.prefetch.hit", 0)
        starves = snapshot.get("parallel.prefetch.starve", 0)
        # Every __next__ is classified one way or the other (the final
        # _DONE read counts too).
        assert hits + starves == len(batches) + 1

    def test_invalid_depth_rejected(self):
        with pytest.raises(ValueError):
            PrefetchIterator(iter(()), depth=0)
        with pytest.raises(ConfigError):
            TrainConfig(prefetch_batches=-1).validate()


@pytest.fixture(scope="module")
def dataset_small(world, corpus, vocab):
    return NedDataset(
        corpus, "train", vocab, world.candidate_map, 4, kgs=[world.kg]
    )


# ----------------------------------------------------------------------
# Collate-buffer ring rotation
# ----------------------------------------------------------------------
class TestBufferRing:
    def test_ring_rotates_arenas(self, dataset_small):
        ring = [CollateBuffers(), CollateBuffers(), CollateBuffers()]
        stream = dataset_small.batches(4, buffers=ring)
        first = next(stream)
        first_tokens = first.token_ids
        snapshot = first_tokens.copy()
        second = next(stream)
        # Different arena: the first batch's arrays are still intact.
        assert second.token_ids is not first_tokens
        assert np.array_equal(first_tokens, snapshot)
        third = next(stream)
        fourth = next(stream)
        # Ring of 3: batch 4 reuses batch 1's arena (same base storage
        # when shapes match — at minimum, not a fresh allocation chain).
        assert fourth.token_ids is not second.token_ids
        assert fourth.token_ids is not third.token_ids

    def test_empty_ring_rejected(self, dataset_small):
        from repro.errors import CorpusError

        with pytest.raises(CorpusError):
            next(dataset_small.batches(4, buffers=[]))

    def test_single_buffers_object_still_works(self, dataset_small):
        buffers = CollateBuffers()
        batches = list(dataset_small.batches(4, buffers=buffers))
        assert batches
