"""Tests for weak labeling heuristics/pipeline and candidate generation."""

import pytest

from repro.candgen import (
    NGramCandidateGenerator,
    direct_candidates,
    mine_anchor_candidates,
    mine_candidate_map,
    mine_kb_candidates,
)
from repro.corpus import (
    CorpusConfig,
    Mention,
    PROVENANCE_ALIAS_WL,
    PROVENANCE_PRONOUN_WL,
    Sentence,
    generate_corpus,
    mention_growth_factor,
)
from repro.corpus.document import Corpus, Page
from repro.kb import (
    COARSE_TYPES,
    EntityRecord,
    KnowledgeBase,
    RelationRecord,
    TypeRecord,
    WorldConfig,
    generate_world,
)
from repro.weaklabel import (
    WeakLabeler,
    label_alternate_names,
    label_pronouns,
    weak_label_corpus,
)


@pytest.fixture(scope="module")
def world():
    return generate_world(WorldConfig(num_entities=300, seed=3))


@pytest.fixture(scope="module")
def corpus(world):
    return generate_corpus(world, CorpusConfig(num_pages=150, seed=5))


def make_person_kb():
    person_coarse = COARSE_TYPES.index("person")
    types = [TypeRecord(0, "politician", person_coarse, ("elected",))]
    entities = [
        EntityRecord(
            0, "ada lovelace", "lovelace", ("ada",), (0,), person_coarse,
            gender="f",
        ),
        EntityRecord(
            1, "charles babbage", "babbage", ("charles",), (0,), person_coarse,
            gender="m",
        ),
        EntityRecord(2, "engine", "engine", (), (0,), 3),
    ]
    return KnowledgeBase(entities, types, [RelationRecord(0, "knows")])


def make_person_page(kb, subject_id=0):
    sentences = [
        Sentence(
            0, 0,
            ["the", "lovelace", "wrote", "notes"],
            [Mention(1, 2, "lovelace", 0)],
        ),
        Sentence(1, 0, ["she", "met", "babbage"], [Mention(2, 3, "babbage", 1)]),
        Sentence(2, 0, ["he", "praised", "ada", "too"], []),
    ]
    return Page(0, subject_id, "train", sentences)


class TestPronounLabeling:
    def test_matches_gender(self):
        kb = make_person_kb()
        page = make_person_page(kb)
        results = label_pronouns(page, kb)
        # Subject is female: only "she" should be labeled, not "he".
        all_mentions = [m for _, ms in results for m in ms]
        assert len(all_mentions) == 1
        mention = all_mentions[0]
        assert mention.gold_entity_id == 0
        assert mention.provenance == PROVENANCE_PRONOUN_WL
        sentence = results[0][0]
        assert sentence.tokens[mention.start] == "she"

    def test_male_subject_matches_he(self):
        kb = make_person_kb()
        page = make_person_page(kb, subject_id=1)
        results = label_pronouns(page, kb)
        tokens = [s.tokens[m.start] for s, ms in results for m in ms]
        assert tokens == ["he"]

    def test_non_person_subject_skipped(self):
        kb = make_person_kb()
        page = make_person_page(kb, subject_id=2)
        assert label_pronouns(page, kb) == []

    def test_does_not_relabel_existing_mentions(self):
        kb = make_person_kb()
        sentences = [
            Sentence(0, 0, ["she", "ran"], [Mention(0, 1, "lovelace", 0)]),
        ]
        page = Page(0, 0, "train", sentences)
        assert label_pronouns(page, kb) == []


class TestAlternateNameLabeling:
    def test_labels_alias_tokens(self):
        kb = make_person_kb()
        page = make_person_page(kb)
        results = label_alternate_names(page, kb)
        all_mentions = [m for _, ms in results for m in ms]
        assert len(all_mentions) == 1
        mention = all_mentions[0]
        assert mention.surface == "ada"
        assert mention.gold_entity_id == 0
        assert mention.provenance == PROVENANCE_ALIAS_WL

    def test_skips_labeled_positions(self):
        kb = make_person_kb()
        sentences = [Sentence(0, 0, ["ada", "x"], [Mention(0, 1, "ada", 0)])]
        page = Page(0, 0, "train", sentences)
        assert label_alternate_names(page, kb) == []


class TestPipeline:
    def test_growth_factor_meaningful(self, world, corpus):
        labeled, report = weak_label_corpus(corpus, world.kb)
        assert report.total_weak_labels > 0
        assert report.pronoun_labels > 0
        assert report.alias_labels > 0
        # Paper reports 1.7x across Wikipedia; our pages are denser in
        # anchors so we accept anything clearly above 1.1x.
        assert report.growth_factor > 1.1
        assert mention_growth_factor(corpus, labeled) == pytest.approx(
            report.growth_factor, rel=1e-6
        )

    def test_only_train_split_labeled(self, world, corpus):
        labeled, _ = weak_label_corpus(corpus, world.kb)
        for split in ("val", "test"):
            for sentence in labeled.sentences(split):
                assert not sentence.weak_mentions

    def test_original_corpus_untouched(self, world, corpus):
        before = corpus.num_mentions("train")
        weak_label_corpus(corpus, world.kb)
        assert corpus.num_mentions("train") == before

    def test_weak_labels_point_at_page_subject(self, world, corpus):
        labeled, _ = weak_label_corpus(corpus, world.kb)
        for page in labeled.pages:
            for sentence in page.sentences:
                for mention in sentence.weak_mentions:
                    assert mention.gold_entity_id == page.subject_entity_id

    def test_heuristics_toggle(self, world, corpus):
        _, pronoun_only = WeakLabeler(world.kb, use_alternate_names=False).apply(corpus)
        _, alias_only = WeakLabeler(world.kb, use_pronouns=False).apply(corpus)
        assert pronoun_only.alias_labels == 0
        assert alias_only.pronoun_labels == 0
        assert pronoun_only.pronoun_labels > 0
        assert alias_only.alias_labels > 0


class TestCandidateMining:
    def test_anchor_map_scores_are_counts(self, corpus):
        cmap = mine_anchor_candidates(corpus)
        sentence = corpus.sentences("train")[0]
        mention = sentence.anchor_mentions[0]
        ranked = dict(cmap.candidates(mention.surface))
        assert ranked[mention.gold_entity_id] >= 1.0

    def test_kb_map_covers_all_entities(self, world):
        cmap = mine_kb_candidates(world.kb)
        for entity in list(world.kb.entities())[:50]:
            assert entity.entity_id in cmap.candidate_ids(entity.title)
            assert entity.entity_id in cmap.candidate_ids(entity.mention_stem)

    def test_merged_map_recall(self, world, corpus):
        """The mined Γ must contain the gold entity for nearly every
        evaluation mention (decoupling candgen from model quality)."""
        cmap = mine_candidate_map(corpus, world.kb)
        total, hit = 0, 0
        for split in ("val", "test"):
            for sentence in corpus.sentences(split):
                for mention in sentence.anchor_mentions:
                    total += 1
                    ids = cmap.candidate_ids(mention.surface, k=8)
                    hit += mention.gold_entity_id in ids
        assert total > 100
        assert hit / total > 0.95

    def test_mined_popularity_order_matches_world(self, world, corpus):
        """Anchor-count ranking should approximate the world's Zipf
        ranking for frequently seen stems."""
        cmap = mine_candidate_map(corpus, world.kb)
        agreements, checked = 0, 0
        for entity in list(world.kb.entities())[:30]:
            mined = cmap.candidate_ids(entity.mention_stem, k=3)
            truth = world.candidate_map.candidate_ids(entity.mention_stem, k=3)
            if len(truth) >= 2:
                checked += 1
                agreements += mined[0] == truth[0]
        assert checked > 5
        assert agreements / checked > 0.6


class TestNGramBackoff:
    def test_direct_lookup_preferred(self, world, corpus):
        cmap = mine_candidate_map(corpus, world.kb)
        generator = NGramCandidateGenerator(cmap, world.kb)
        entity = world.kb.entity(0)
        direct = direct_candidates(cmap, entity.mention_stem, 5)
        via_generator = generator.candidates(entity.mention_stem, [], 5)
        assert via_generator == direct

    def test_backoff_on_unknown_surface(self, world, corpus):
        cmap = mine_candidate_map(corpus, world.kb)
        generator = NGramCandidateGenerator(cmap, world.kb)
        entity = world.kb.entity(5)
        surface = f"unknownword {entity.mention_stem}"
        results = generator.candidates(surface, [], 5)
        assert entity.entity_id in [eid for eid, _ in results]

    def test_context_rescoring_prefers_matching_profile(self, world, corpus):
        cmap = mine_candidate_map(corpus, world.kb)
        generator = NGramCandidateGenerator(cmap, world.kb)
        entity = world.kb.entity(10)
        mates = [
            eid
            for eid, _ in cmap.get_candidates(entity.mention_stem, 10)
            if eid != entity.entity_id
        ]
        if not mates:
            pytest.skip("stem has no confusables in this seed")
        context = list(entity.cue_words) * 3
        surface = f"zzz {entity.mention_stem}"
        results = generator.candidates(surface, context, 5)
        ranked_ids = [eid for eid, _ in results]
        assert entity.entity_id in ranked_ids
        assert ranked_ids.index(entity.entity_id) <= 1

    def test_no_candidates_for_garbage(self, world, corpus):
        cmap = mine_candidate_map(corpus, world.kb)
        generator = NGramCandidateGenerator(cmap, world.kb)
        assert generator.candidates("qqq zzz", [], 5) == []
