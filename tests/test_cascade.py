"""Tests for repro.cascade: policy edges, byte-identity, attribution.

The byte-identity tests encode the cascade's determinism contract
(docs/CASCADE.md): escalated work is batched exactly as a standalone
full-model pass over the same sentences would batch it, so escalated
outputs are byte-identical to that pass. ``make check`` reruns this
module under ``REPRO_PARALLEL_START_METHOD=spawn`` to cover the pool
plumbing's pickling contract.
"""

import dataclasses
import json

import numpy as np
import pytest

import repro.obs as obs
from repro.cascade import (
    TIER_HEURISTIC,
    TIER_MODEL,
    CascadePolicy,
    Tier0Linker,
    cascade_predict,
    record_cascade_metrics,
)
from repro.core import BootlegAnnotator, BootlegConfig, BootlegModel
from repro.core.trainer import predict, predict_batches
from repro.corpus import (
    CollateBuffers,
    CorpusConfig,
    EntityCounts,
    NedDataset,
    build_vocabulary,
    detokenize,
    generate_corpus,
)
from repro.corpus.tokenizer import tokenize
from repro.errors import ConfigError
from repro.kb import WorldConfig, generate_world
from repro.kb.aliases import CandidateMap
from repro.kb.knowledge_base import KnowledgeBase
from repro.kb.schema import EntityRecord, TypeRecord
from repro.obs.metrics import MetricsRegistry
from repro.obs.report import SliceScore, score_slices

# Tiny synthetic worlds have overwhelmingly confident priors, so the
# default policy answers everything; this stricter policy produces a
# genuine answered/escalated mix on the 120-entity world below.
STRICT = CascadePolicy(margin=0.8, prior_mass=0.85)


# ----------------------------------------------------------------------
# Shared fixtures
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def world():
    return generate_world(WorldConfig(num_entities=120, seed=7))


@pytest.fixture(scope="module")
def corpus(world):
    return generate_corpus(world, CorpusConfig(num_pages=30, seed=7))


@pytest.fixture(scope="module")
def vocab(corpus):
    return build_vocabulary(corpus)


@pytest.fixture(scope="module")
def model(world, corpus, vocab):
    counts = EntityCounts.from_corpus(corpus, world.num_entities)
    model = BootlegModel(
        BootlegConfig(num_candidates=4, dropout=0.0),
        world.kb,
        vocab,
        entity_counts=counts.counts,
    )
    model.eval()
    return model


@pytest.fixture(scope="module")
def dataset(world, corpus, vocab):
    return NedDataset(
        corpus, "val", vocab, world.candidate_map, 4, kgs=[world.kg]
    )


def records_equal(a, b):
    for field in dataclasses.fields(a):
        left = getattr(a, field.name)
        right = getattr(b, field.name)
        if isinstance(left, np.ndarray):
            assert np.array_equal(left, right), field.name
        else:
            assert left == right, field.name


# ----------------------------------------------------------------------
# Tier-0 decision edge cases
# ----------------------------------------------------------------------
class TestTier0Decisions:
    def test_single_candidate_alias_answers_with_full_margin(self):
        cmap = CandidateMap()
        cmap.add("solo", 3, 2.0)
        linker = Tier0Linker(cmap, CascadePolicy())
        decision = linker.resolve("solo")
        assert decision.answered
        assert decision.entity_id == 3
        assert decision.margin == 1.0
        assert decision.confidence == 1.0
        assert decision.tier == TIER_HEURISTIC

    def test_exact_prior_tie_escalates(self):
        cmap = CandidateMap()
        cmap.add("tie", 1, 1.0)
        cmap.add("tie", 2, 1.0)
        decision = Tier0Linker(cmap, CascadePolicy()).resolve("tie")
        assert not decision.answered
        assert decision.margin == 0.0
        assert decision.tier == TIER_MODEL

    def test_unknown_alias_is_answered_unlinkable(self):
        cmap = CandidateMap()
        cmap.add("known", 0, 1.0)
        decision = Tier0Linker(cmap, CascadePolicy()).resolve("never seen")
        assert decision.answered
        assert decision.entity_id == -1
        assert decision.candidate_ids.shape == (0,)

    def test_zero_prior_mass_escalates(self):
        cmap = CandidateMap()
        cmap.add("ghost", 4, 0.0)
        decision = Tier0Linker(cmap, CascadePolicy()).resolve("ghost")
        assert not decision.answered
        assert decision.entity_id == 4

    def test_type_veto_blocks_overshadowed_winner(self):
        # Top candidate is a person, but the location mass outweighs it:
        # the popularity winner is exactly the overshadowed case the
        # model exists for, so tier 0 must abstain.
        kb = KnowledgeBase(
            [
                EntityRecord(0, "A", "a", coarse_type_id=0),
                EntityRecord(1, "B", "b", coarse_type_id=1),
                EntityRecord(2, "C", "c", coarse_type_id=1),
            ],
            [TypeRecord(0, "t0", 0), TypeRecord(1, "t1", 1)],
            [],
        )
        cmap = CandidateMap()
        cmap.add("amb", 0, 0.45)
        cmap.add("amb", 1, 0.30)
        cmap.add("amb", 2, 0.25)
        policy = CascadePolicy(margin=0.1, prior_mass=0.4)
        vetoed = Tier0Linker(cmap, policy, kb=kb).resolve("amb")
        assert not vetoed.answered
        unvetoed = Tier0Linker(cmap, policy).resolve("amb")
        assert unvetoed.answered and unvetoed.entity_id == 0
        off = dataclasses.replace(policy, type_filter=False)
        assert Tier0Linker(cmap, off, kb=kb).resolve("amb").answered

    def test_decisions_are_cached_per_normalized_surface(self):
        cmap = CandidateMap()
        cmap.add("Miami Beach", 5, 1.0)
        linker = Tier0Linker(cmap, CascadePolicy())
        first = linker.resolve("Miami Beach")
        assert linker.resolve("miami  beach") is first

    def test_resolve_batch_empty(self):
        assert Tier0Linker(CandidateMap(), CascadePolicy()).resolve_batch([]) == []

    def test_policy_validation(self):
        with pytest.raises(ConfigError):
            CascadePolicy(margin=1.5).validate()
        with pytest.raises(ConfigError):
            CascadePolicy(prior_mass=-0.1).validate()
        with pytest.raises(ConfigError):
            Tier0Linker(CandidateMap(), CascadePolicy(margin=2.0))


# ----------------------------------------------------------------------
# cascade_predict over a dataset
# ----------------------------------------------------------------------
class TestCascadePredict:
    def test_record_order_and_tier_attribution(self, model, dataset, world):
        records = cascade_predict(model, dataset, STRICT, kb=world.kb)
        full = predict(model, dataset)
        assert len(records) == len(full)
        assert [(r.sentence_id, r.mention_index) for r in records] == [
            (r.sentence_id, r.mention_index) for r in full
        ]
        tiers = {r.tier for r in records}
        assert tiers == {TIER_HEURISTIC, TIER_MODEL}, (
            "policy must produce an answered/escalated mix on this world"
        )

    def test_escalated_records_byte_identical_to_standalone_pass(
        self, model, dataset, world
    ):
        batch_size = 4
        records = cascade_predict(
            model, dataset, STRICT, kb=world.kb, batch_size=batch_size
        )
        # Replicate the escalation set independently and run the plain
        # full-model path over exactly those sentences.
        linker = Tier0Linker(world.candidate_map, STRICT, kb=world.kb,
                             num_candidates=dataset.num_candidates)
        escalated_items = [
            item
            for item in dataset.encoded
            if any(
                not linker.resolve(m.surface).answered
                for m in item.sentence.mentions
                if m.end <= item.num_tokens
            )
        ]
        assert escalated_items, "strict policy must escalate something"
        buffers = CollateBuffers()
        standalone = predict_batches(
            model,
            (
                dataset.collate(escalated_items[i : i + batch_size], buffers)
                for i in range(0, len(escalated_items), batch_size)
            ),
        )
        by_key = {(r.sentence_id, r.mention_index): r for r in standalone}
        escalated = [r for r in records if r.tier == TIER_MODEL]
        assert len(escalated) > 0
        for record in escalated:
            records_equal(record, by_key[(record.sentence_id, record.mention_index)])

    def test_tier0_records_carry_normalized_priors(self, model, dataset, world):
        records = cascade_predict(model, dataset, CascadePolicy(), kb=world.kb)
        assert all(r.tier == TIER_HEURISTIC for r in records)
        for record in records:
            kept = record.candidate_scores[record.candidate_ids >= 0]
            assert kept.shape[0] > 0
            assert kept[0] == record.candidate_scores.max()
            assert 0.0 < kept.sum() <= 1.0 + 1e-9

    def test_predict_fn_receives_only_escalated_batches(
        self, model, dataset, world
    ):
        seen = []

        def spy(spy_model, batches):
            materialized = list(batches)
            seen.append(sum(b.token_ids.shape[0] for b in materialized))
            return predict_batches(spy_model, iter(materialized))

        cascade_predict(model, dataset, STRICT, kb=world.kb, predict_fn=spy)
        assert len(seen) == 1
        assert 0 < seen[0] < len(dataset)

    def test_all_confident_dataset_never_calls_model(
        self, model, dataset, world
    ):
        def exploding(_model, _batches):
            raise AssertionError("model must not run when nothing escalates")

        records = cascade_predict(
            model, dataset, CascadePolicy(), kb=world.kb, predict_fn=exploding
        )
        assert all(r.tier == TIER_HEURISTIC for r in records)


# ----------------------------------------------------------------------
# Annotator integration
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def texts(corpus, world, vocab, model):
    plain = BootlegAnnotator(
        model, vocab, world.candidate_map, world.kb, kgs=[world.kg],
        num_candidates=4, batch_size=4,
    )
    kept = [
        detokenize(list(s.tokens))
        for s in corpus.sentences("test")[:12]
        if plain.detect_mentions(list(s.tokens))
    ]
    assert len(kept) >= 6
    return kept


class TestAnnotatorCascade:
    def make(self, world, vocab, model, policy):
        return BootlegAnnotator(
            model, vocab, world.candidate_map, world.kb, kgs=[world.kg],
            num_candidates=4, batch_size=4, cascade=policy,
        )

    def test_empty_batch(self, world, vocab, model):
        annotator = self.make(world, vocab, model, CascadePolicy())
        assert annotator.annotate_batch([]) == []

    def test_spans_match_full_path_and_tiers_attributed(
        self, world, vocab, model, texts
    ):
        plain = self.make(world, vocab, model, None)
        cascade = self.make(world, vocab, model, STRICT)
        base = plain.annotate_batch(texts)
        tiered = cascade.annotate_batch(texts)
        assert [[(m.start, m.end) for m in doc] for doc in base] == [
            [(m.start, m.end) for m in doc] for doc in tiered
        ]
        tiers = {m.tier for doc in tiered for m in doc}
        assert TIER_HEURISTIC in tiers
        assert all(m.tier == TIER_MODEL for doc in base for m in doc)

    def test_escalated_mentions_byte_identical_to_standalone_run(
        self, world, vocab, model, texts
    ):
        cascade = self.make(world, vocab, model, STRICT)
        tiered = cascade.annotate_batch(texts)
        escalated_docs = [
            index
            for index, doc in enumerate(tiered)
            if any(m.tier == TIER_MODEL for m in doc)
        ]
        assert escalated_docs, "strict policy must escalate some document"
        plain = self.make(world, vocab, model, None)
        standalone = plain.annotate_batch([texts[i] for i in escalated_docs])
        for doc_index, full_doc in zip(escalated_docs, standalone):
            full_by_span = {(m.start, m.end): m for m in full_doc}
            for mention in tiered[doc_index]:
                if mention.tier != TIER_MODEL:
                    continue
                twin = full_by_span[(mention.start, mention.end)]
                assert dataclasses.asdict(mention) == dataclasses.asdict(twin)

    def test_fully_confident_docs_skip_the_model(self, world, vocab, model, texts):
        annotator = self.make(world, vocab, model, CascadePolicy())

        def exploding(*_args, **_kwargs):
            raise AssertionError("fully confident batch must not touch the model")

        annotator._model_records = exploding
        tiered = annotator.annotate_batch(texts)
        assert all(m.tier == TIER_HEURISTIC for doc in tiered for m in doc)

    def test_refresh_alias_index_rebuilds_the_linker(self, world, vocab, model):
        annotator = self.make(world, vocab, model, CascadePolicy())
        stale = annotator._tier0
        annotator.refresh_alias_index()
        assert annotator._tier0 is not stale


# ----------------------------------------------------------------------
# Pool plumbing (rerun under spawn by make check)
# ----------------------------------------------------------------------
class TestPoolCascade:
    def test_worker_spec_carries_the_policy(self, world, vocab, model):
        from repro.parallel import shared_memory_available
        from repro.parallel.pool import AnnotatorPool

        if not shared_memory_available():
            pytest.skip("POSIX shared memory unavailable")
        annotator = BootlegAnnotator(
            model, vocab, world.candidate_map, world.kb, kgs=[world.kg],
            num_candidates=4, batch_size=4, cascade=STRICT,
        )
        pool = AnnotatorPool.from_annotator(annotator, workers=2)
        try:
            spec = pool._build_spec()
            assert spec.cascade == STRICT
        finally:
            if pool._store is not None:
                pool._store.close(unlink=True)
                pool._store = None

    def test_pool_matches_serial_cascade(self, world, vocab, model, texts):
        from repro.nn import compute_dtype
        from repro.parallel import AnnotatorPool, shared_memory_available

        if not shared_memory_available():
            pytest.skip("POSIX shared memory unavailable")
        annotator = BootlegAnnotator(
            model, vocab, world.candidate_map, world.kb, kgs=[world.kg],
            num_candidates=4, batch_size=4, cascade=STRICT,
        )
        serial = annotator.annotate_batch(texts)
        with compute_dtype(np.float32):
            with AnnotatorPool.from_annotator(annotator, workers=2) as pool:
                pooled = pool.annotate_batch(texts)
        # Tier-0 answers are exact; escalated answers are computed from
        # per-chunk batch compositions in the pool, so scores agree only
        # numerically (docs/CASCADE.md).
        assert [[(m.start, m.end, m.tier) for m in doc] for doc in serial] == [
            [(m.start, m.end, m.tier) for m in doc] for doc in pooled
        ]
        for doc_a, doc_b in zip(serial, pooled):
            for a, b in zip(doc_a, doc_b):
                assert a.entity_id == b.entity_id
                assert a.score == pytest.approx(b.score, abs=1e-4)

    def test_cascade_counters_survive_registry_merge(self):
        source = MetricsRegistry()
        with obs.scope():
            record_cascade_metrics(7, 3, 0.001)
            snapshot = obs.metrics.snapshot()
        source.merge(snapshot, worker="0")
        source.merge(snapshot, worker="1")
        merged = source.to_dict()["counters"]
        assert merged["cascade.tier0_answered{worker=0}"] == 7
        assert merged["cascade.escalated{worker=1}"] == 3
        histograms = source.to_dict()["histograms"]
        assert "cascade.tier0_seconds{worker=0}" in histograms


# ----------------------------------------------------------------------
# Report tier attribution
# ----------------------------------------------------------------------
class TestReportTiers:
    def test_score_slices_counts_tiers(self, model, dataset, world):
        records = cascade_predict(model, dataset, STRICT, kb=world.kb)
        scores = score_slices(records, num_samples=20)
        tiers = scores["all"].tiers
        assert set(tiers) == {TIER_HEURISTIC, TIER_MODEL}
        assert sum(tiers.values()) == scores["all"].num_mentions

    def test_slice_score_round_trips_tiers(self):
        score = SliceScore("all", 90.0, 88.0, 92.0, 10, tiers={"tier0": 6, "model": 4})
        rebuilt = SliceScore.from_dict("all", score.to_dict())
        assert rebuilt.tiers == {"tier0": 6, "model": 4}

    def test_from_dict_tolerates_missing_tiers(self):
        payload = {"f1": 90.0, "low": 88.0, "high": 92.0, "num_mentions": 10}
        assert SliceScore.from_dict("all", payload).tiers == {}


# ----------------------------------------------------------------------
# Satellites: detector bound, baseline direction support
# ----------------------------------------------------------------------
class _ProbeCountingMap:
    """Delegating candidate-map spy that counts lookup probes."""

    def __init__(self, inner):
        self.inner = inner
        self.probes = 0

    def get_candidates(self, alias, k=None):
        self.probes += 1
        return self.inner.get_candidates(alias, k)

    def max_alias_tokens(self):
        return self.inner.max_alias_tokens()


class TestDetectorBound:
    def test_max_alias_tokens(self):
        cmap = CandidateMap()
        assert cmap.max_alias_tokens() == 0
        cmap.add("one", 0, 1.0)
        cmap.add("two tokens here", 1, 1.0)
        assert cmap.max_alias_tokens() == 3
        cmap.add("a much longer alias of six", 2, 1.0)
        assert cmap.max_alias_tokens() == 6

    def test_scan_window_bounded_by_longest_alias(self):
        from repro.candgen.detection import MentionDetector

        cmap = CandidateMap()
        cmap.add("miami", 0, 1.0)
        cmap.add("south beach", 1, 1.0)
        spy = _ProbeCountingMap(cmap)
        detector = MentionDetector(spy, max_span=5, expand_boundaries=False)
        tokens = ["unknownA", "unknownB", "unknownC", "unknownD"]
        detector.detect(tokens)
        # Window capped at 2 (longest alias): at most 2 probes per
        # position instead of up to 5.
        assert spy.probes <= 2 * len(tokens)

    def test_detections_unchanged_by_bound(self, world):
        from repro.candgen.detection import MentionDetector

        tokens = ["the"] + world.kb.entity(0).mention_stem.split() + ["of"]
        wide = MentionDetector(world.candidate_map, max_span=9)
        narrow = MentionDetector(world.candidate_map, max_span=3)
        assert [d.span for d in wide.detect(tokens)] == [
            d.span for d in narrow.detect(tokens)
        ]


class TestBaselineDirections:
    def _write(self, path, entries):
        path.write_text(json.dumps({"benchmarks": entries}))

    def test_higher_is_better_regresses_on_drop(self, tmp_path):
        import sys

        sys.path.insert(0, "benchmarks")
        try:
            from compare_to_baseline import main
        finally:
            sys.path.pop(0)
        baseline = tmp_path / "baseline.json"
        current = tmp_path / "current.json"
        self._write(baseline, [
            {"name": "cascade_speedup", "stats": {"mean": 3.0},
             "higher_is_better": True},
        ])
        # Improvement (ratio > 1) passes for higher-is-better entries.
        self._write(current, [
            {"name": "cascade_speedup", "stats": {"mean": 4.0},
             "higher_is_better": True},
        ])
        assert main([str(current), str(baseline)]) == 0
        # A >20% drop fails.
        self._write(current, [
            {"name": "cascade_speedup", "stats": {"mean": 2.0},
             "higher_is_better": True},
        ])
        assert main([str(current), str(baseline)]) == 1

    def test_timing_entries_keep_lower_is_better(self, tmp_path):
        import sys

        sys.path.insert(0, "benchmarks")
        try:
            from compare_to_baseline import main
        finally:
            sys.path.pop(0)
        baseline = tmp_path / "baseline.json"
        current = tmp_path / "current.json"
        self._write(baseline, [{"name": "t", "stats": {"mean": 1.0}}])
        self._write(current, [{"name": "t", "stats": {"mean": 0.5}}])
        assert main([str(current), str(baseline)]) == 0
        self._write(current, [{"name": "t", "stats": {"mean": 1.5}}])
        assert main([str(current), str(baseline)]) == 1
