"""Tests for the experiments layer (workspaces, caching, model specs)."""

import numpy as np
import pytest

from repro.baselines import NedBaseConfig
from repro.core import BootlegConfig, TrainConfig
from repro.corpus import CorpusConfig
from repro.errors import ConfigError
from repro.experiments import (
    ModelSpec,
    Workspace,
    WorkspaceConfig,
    regularization_model_specs,
    standard_model_specs,
)
from repro.kb import WorldConfig


@pytest.fixture()
def tiny_config(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    return WorkspaceConfig(
        name="tiny",
        world=WorldConfig(num_entities=120, seed=21),
        corpus=CorpusConfig(num_pages=30, seed=21),
        num_candidates=4,
        train=TrainConfig(epochs=1, batch_size=16, learning_rate=3e-3, seed=2),
    )


class TestWorkspace:
    def test_builds_all_artifacts(self, tiny_config):
        workspace = Workspace(tiny_config)
        assert workspace.world.num_entities == 120
        assert len(workspace.dataset("train")) > 0
        assert len(workspace.dataset("val")) > 0
        assert workspace.counts.counts.shape == (120,)
        assert workspace.weak_label_report.total_weak_labels > 0

    def test_weak_label_toggle(self, tiny_config, tmp_path, monkeypatch):
        import dataclasses

        config = dataclasses.replace(tiny_config, name="tiny_nowl", weak_label=False)
        workspace = Workspace(config)
        assert workspace.weak_label_report.total_weak_labels == 0

    def test_cooccurrence_kg(self, tiny_config):
        import dataclasses

        config = dataclasses.replace(
            tiny_config, name="tiny_cooc", use_cooccurrence_kg=True,
            cooccurrence_min_count=2,
        )
        workspace = Workspace(config)
        assert len(workspace.kgs) == 2

    def test_training_and_prediction_cache(self, tiny_config):
        workspace = Workspace(tiny_config)
        spec = ModelSpec(
            "mini",
            bootleg_config=BootlegConfig(
                num_candidates=4, hidden_dim=32, entity_dim=32,
                type_dim=16, relation_dim=16,
            ),
        )
        predictions_first = workspace.predictions(spec, "val")
        assert predictions_first
        # Second call must come from cache and be identical.
        fresh = Workspace(tiny_config)
        predictions_second = fresh.predictions(spec, "val")
        assert len(predictions_first) == len(predictions_second)
        for a, b in zip(predictions_first, predictions_second):
            assert a.predicted_entity_id == b.predicted_entity_id

    def test_cache_key_sensitive_to_spec(self, tiny_config):
        workspace = Workspace(tiny_config)
        spec_a = ModelSpec("a", bootleg_config=BootlegConfig(num_candidates=4))
        spec_b = ModelSpec(
            "b", bootleg_config=BootlegConfig(num_candidates=4, use_types=False,
                                              use_type_prediction=False)
        )
        assert workspace._cache_key(spec_a) != workspace._cache_key(spec_b)


class TestModelSpecs:
    def test_standard_specs_complete(self):
        specs = standard_model_specs()
        assert set(specs) == {"bootleg", "ned_base", "ent_only", "type_only", "kg_only"}
        assert specs["ned_base"].kind == "ned_base"
        assert specs["type_only"].bootleg_config.use_entity is False

    def test_regularization_specs_cover_grid(self):
        specs = regularization_model_specs()
        names = set(specs)
        assert {"fixed_0", "fixed_20", "fixed_50", "fixed_80"} <= names
        assert {"inv_pop_pow", "inv_pop_log", "inv_pop_lin", "pop_pow"} <= names

    def test_spec_validation(self):
        with pytest.raises(ConfigError):
            ModelSpec("bad", kind="transformer")
        with pytest.raises(ConfigError):
            ModelSpec("bad", kind="bootleg")
        with pytest.raises(ConfigError):
            ModelSpec("bad", kind="ned_base")
        ModelSpec("ok", kind="ned_base", ned_base_config=NedBaseConfig())
