"""Decision provenance: ring semantics, pooled merge, CLI, endpoint.

The identity tests matter most: provenance is an observer, so turning
it on must never change a single prediction, serial or pooled. ``make
check`` reruns this module under ``REPRO_PARALLEL_START_METHOD=spawn``
to enforce the pickling contract on worker-shipped records.
"""

import dataclasses
import json
import os
import signal
import time
import urllib.request
from contextlib import contextmanager

import numpy as np
import pytest

import repro.obs as obs
from repro import cli
from repro.cascade import (
    REASON_CONFIDENT,
    CascadePolicy,
    cascade_predict,
)
from repro.core import (
    BootlegAnnotator,
    BootlegConfig,
    BootlegModel,
)
from repro.corpus import (
    CorpusConfig,
    EntityCounts,
    NedDataset,
    build_vocabulary,
    detokenize,
    generate_corpus,
)
from repro.corpus.tokenizer import tokenize
from repro.kb import WorldConfig, generate_world
from repro.nn import compute_dtype
from repro.obs import provenance
from repro.obs.provenance import DecisionRecord, ProvenanceRecorder
from repro.parallel import AnnotatorPool, shared_memory_available

needs_shm = pytest.mark.skipif(
    not shared_memory_available(), reason="POSIX shared memory unavailable"
)


# ----------------------------------------------------------------------
# Shared fixtures: one small world, model, annotator per module
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def world():
    return generate_world(WorldConfig(num_entities=120, seed=7))


@pytest.fixture(scope="module")
def corpus(world):
    return generate_corpus(world, CorpusConfig(num_pages=30, seed=7))


@pytest.fixture(scope="module")
def vocab(corpus):
    return build_vocabulary(corpus)


@pytest.fixture(scope="module")
def model(world, corpus, vocab):
    counts = EntityCounts.from_corpus(corpus, world.num_entities)
    model = BootlegModel(
        BootlegConfig(num_candidates=4, dropout=0.0),
        world.kb,
        vocab,
        entity_counts=counts.counts,
    )
    model.eval()
    return model


@pytest.fixture(scope="module")
def annotator(world, vocab, model):
    return BootlegAnnotator(
        model,
        vocab,
        world.candidate_map,
        world.kb,
        kgs=[world.kg],
        num_candidates=4,
        batch_size=4,
    )


@pytest.fixture(scope="module")
def dataset(world, corpus, vocab):
    return NedDataset(
        corpus, "val", vocab, world.candidate_map, 4, kgs=[world.kg]
    )


@pytest.fixture(scope="module")
def texts(corpus, annotator):
    candidates = [
        detokenize(list(s.tokens)) for s in corpus.sentences("test")[:12]
    ]
    kept = [t for t in candidates if annotator.detect_mentions(tokenize(t))]
    assert len(kept) >= 6, "test corpus must yield mention-bearing texts"
    return (kept * 3)[:18]


@pytest.fixture(autouse=True)
def _clean_provenance():
    provenance.reset()
    yield
    provenance.reset()


@contextmanager
def _capture(capacity=provenance.DEFAULT_CAPACITY, spill_path=None):
    """obs + provenance on, both reset afterwards."""
    with obs.scope(fresh=True):
        provenance.enable(capacity=capacity, spill_path=spill_path)
        try:
            yield provenance.recorder()
        finally:
            provenance.reset()


def records_equal(a, b):
    assert len(a) == len(b)
    for rec_a, rec_b in zip(a, b):
        dict_a, dict_b = dataclasses.asdict(rec_a), dataclasses.asdict(rec_b)
        assert dict_a.keys() == dict_b.keys()
        for field in dict_a:
            value_a, value_b = dict_a[field], dict_b[field]
            if isinstance(value_a, np.ndarray) or isinstance(value_b, np.ndarray):
                assert np.array_equal(value_a, value_b), field
            else:
                assert value_a == value_b, field


# ----------------------------------------------------------------------
# Recorder unit semantics
# ----------------------------------------------------------------------
class TestRecorder:
    def test_record_upserts_and_none_keeps_stored_values(self):
        rec = ProvenanceRecorder(capacity=8)
        rec.record(1, 0, surface="Lincoln", tier="tier0", margin=0.5)
        rec.record(1, 0, tier="model", margin=None, model_scores=[0.9, 0.1])
        (stored,) = rec.records()
        assert stored.surface == "Lincoln"
        assert stored.tier == "model"
        assert stored.margin == 0.5  # None never clobbers
        assert stored.model_scores == [0.9, 0.1]
        assert len(rec) == 1

    def test_record_coerces_numpy_scalars_and_arrays(self):
        rec = ProvenanceRecorder(capacity=8)
        rec.record(
            2,
            0,
            candidate_ids=np.array([3, 1]),
            prior_scores=np.array([0.75, 0.25]),
            confidence=np.float64(0.75),
            predicted_entity_id=np.int64(3),
        )
        (stored,) = rec.records()
        assert stored.candidate_ids == [3, 1]
        assert all(isinstance(v, int) for v in stored.candidate_ids)
        assert isinstance(stored.confidence, float)
        json.dumps(stored.to_dict())  # JSON-safe all the way down

    def test_fill_never_clobbers_and_stamps_worker_once(self):
        rec = ProvenanceRecorder(capacity=8)
        rec.record(3, 1, surface="Ada", slices=["tail"])
        rec.fill(
            {
                "sentence_id": 3,
                "mention_index": 1,
                "surface": "SHIPPED",
                "tier": "model",
                "confidence": 0.8,
            },
            worker=2,
        )
        (stored,) = rec.records()
        assert stored.surface == "Ada"  # owner enrichment survives
        assert stored.tier == "model"  # blank field filled
        assert stored.confidence == 0.8
        assert stored.worker == 2
        rec.fill({"sentence_id": 3, "mention_index": 1}, worker=5)
        assert rec.records()[0].worker == 2  # first rank sticks

    def test_fill_inserts_missing_keys(self):
        rec = ProvenanceRecorder(capacity=8)
        rec.fill({"sentence_id": 9, "mention_index": 0, "tier": "model"}, worker=1)
        (stored,) = rec.records()
        assert stored.key == (9, 0)
        assert stored.worker == 1

    def test_eviction_is_oldest_first_and_spills(self, tmp_path):
        spill = tmp_path / "spill.jsonl"
        rec = ProvenanceRecorder(capacity=2, spill_path=str(spill))
        for i in range(5):
            rec.record(i, 0, tier="tier0")
        assert len(rec) == 2
        assert [r.sentence_id for r in rec.records()] == [3, 4]
        rec.flush()
        spilled = [json.loads(line) for line in spill.read_text().splitlines()]
        assert [row["sentence_id"] for row in spilled] == [0, 1, 2]

    def test_module_flush_writes_evictions_to_spill(self, tmp_path):
        spill = tmp_path / "spill.jsonl"
        with _capture(capacity=2, spill_path=str(spill)) as rec:
            for i in range(4):
                rec.record(i, 0, tier="tier0")
            provenance.flush()
            spilled = [
                json.loads(line) for line in spill.read_text().splitlines()
            ]
            assert [row["sentence_id"] for row in spilled] == [0, 1]

    def test_export_jsonl_roundtrips_backlog_plus_ring(self, tmp_path):
        out = tmp_path / "audit.jsonl"
        rec = ProvenanceRecorder(capacity=2)
        for i in range(4):
            rec.record(i, 0, surface=f"s{i}")
        assert rec.export_jsonl(str(out)) == 4
        loaded = provenance.load_jsonl(str(out))
        assert [r.sentence_id for r in loaded] == [0, 1, 2, 3]
        assert loaded[3].surface == "s3"

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            ProvenanceRecorder(capacity=0)

    def test_module_capture_requires_enable(self):
        assert not provenance.active
        provenance.record_decision(1, 0, surface="x")  # silently dropped
        assert provenance.snapshot_records() == []
        provenance.enable(capacity=4)
        provenance.record_decision(1, 0, surface="x")
        assert len(provenance.snapshot_records()) == 1
        provenance.disable()
        provenance.record_decision(2, 0, surface="y")
        assert len(provenance.snapshot_records()) == 1  # disable() froze it

    def test_suppress_pauses_and_restores(self):
        provenance.enable(capacity=4)
        with provenance.suppress():
            assert not provenance.active
            provenance.record_decision(1, 0)
        assert provenance.active
        assert provenance.snapshot_records() == []

    def test_attach_slices(self):
        provenance.enable(capacity=4)
        provenance.record_decision(1, 0, surface="a")
        provenance.record_decision(2, 0, surface="b")
        provenance.attach_slices(
            {"tail": {(1, 0)}, "kg-relation": {(1, 0), (2, 0)}, "head": set()}
        )
        by_key = {r.key: r for r in provenance.recorder().records()}
        assert by_key[(1, 0)].slices == ["kg-relation", "tail"]
        assert by_key[(2, 0)].slices == ["kg-relation"]


class TestQueryAndFormat:
    def _records(self):
        return [
            DecisionRecord(
                sentence_id=1, mention_index=0, surface="Abe Lincoln",
                tier="tier0", reason=REASON_CONFIDENT, candidate_ids=[5, 7],
                prior_scores=[0.9, 0.1], predicted_entity_id=5,
                gold_entity_id=5, margin=0.8, confidence=0.9,
                slices=["head"],
            ),
            DecisionRecord(
                sentence_id=2, mention_index=1, surface="Lincoln, NE",
                tier="model", reason="margin-too-small",
                candidate_ids=[7, 9], model_scores=[0.6, 0.4],
                predicted_entity_id=7, gold_entity_id=9,
                slices=["tail"], worker=3,
            ),
        ]

    def test_query_filters_compose(self):
        records = self._records()
        assert len(list(provenance.query(records))) == 2
        assert [r.sentence_id for r in provenance.query(records, tier="model")] == [2]
        assert [r.sentence_id for r in provenance.query(records, slice_name="tail")] == [2]
        assert [r.sentence_id for r in provenance.query(records, reason="margin-too-small")] == [2]
        # entity matches predicted, gold, or any candidate
        assert len(list(provenance.query(records, entity_id=7))) == 2
        assert [r.sentence_id for r in provenance.query(records, entity_id=5)] == [1]
        assert [
            r.sentence_id
            for r in provenance.query(records, surface="lincoln", tier="tier0")
        ] == [1]
        assert list(provenance.query(records, sentence_id=2, mention_index=0)) == []

    def test_format_record_renders_candidates_and_titles(self):
        record = self._records()[1]
        text = provenance.format_record(record, titles={7: "Lincoln (city)"})
        assert "sentence 2 mention 1" in text
        assert "tier=model reason=margin-too-small" in text
        assert "worker=3" in text
        assert "7 (Lincoln (city)): prior=- model=0.6000 *" in text
        assert "slices: tail" in text


# ----------------------------------------------------------------------
# Serial capture through the cascade
# ----------------------------------------------------------------------
class TestSerialCascadeCapture:
    def test_cascade_records_every_mention_and_predictions_unchanged(
        self, world, model, dataset
    ):
        policy = CascadePolicy()
        baseline = cascade_predict(model, dataset, policy, kb=world.kb)
        with _capture() as recorder:
            observed = cascade_predict(model, dataset, policy, kb=world.kb)
            captured = recorder.records()
        records_equal(baseline, observed)
        assert len(captured) == len(baseline)
        assert {r.key for r in captured} == {
            (p.sentence_id, p.mention_index) for p in baseline
        }
        by_key = {r.key: r for r in captured}
        for prediction in baseline:
            record = by_key[(prediction.sentence_id, prediction.mention_index)]
            assert record.tier == prediction.tier
            assert record.predicted_entity_id == prediction.predicted_entity_id
            assert record.gold_entity_id == prediction.gold_entity_id
            assert record.surface
            assert record.alias
            assert record.reason
            assert record.candidate_ids
            if record.tier == "tier0":
                assert record.reason == REASON_CONFIDENT
                assert len(record.prior_scores) == len(record.candidate_ids)
                assert record.model_scores == []
            else:
                assert record.reason != REASON_CONFIDENT
                assert len(record.model_scores) == len(record.candidate_ids)

    def test_nothing_captured_when_disabled(self, world, model, dataset):
        assert not obs.enabled
        cascade_predict(model, dataset, CascadePolicy(), kb=world.kb)
        assert provenance.snapshot_records() == []


# ----------------------------------------------------------------------
# Pooled capture: worker rings ship to the owner under worker={rank}
# ----------------------------------------------------------------------
def annotations_equal(a, b):
    assert len(a) == len(b)
    for doc_a, doc_b in zip(a, b):
        assert [dataclasses.asdict(m) for m in doc_a] == [
            dataclasses.asdict(m) for m in doc_b
        ]


@needs_shm
class TestPooledProvenance:
    @contextmanager
    def _pool(self, annotator, **kwargs):
        with compute_dtype(np.float32):
            pool = AnnotatorPool.from_annotator(annotator, workers=2, **kwargs)
        assert not pool.serial, "pool fell back to serial unexpectedly"
        try:
            yield pool
        finally:
            pool.close()

    def test_pooled_capture_covers_every_mention_with_worker_ranks(
        self, annotator, texts
    ):
        # Serial reference capture: which keys must exist, and what the
        # predictions must look like.
        with _capture() as recorder:
            with compute_dtype(np.float32):
                serial = annotator.annotate_batch(texts)
            serial_keys = {r.key for r in recorder.records()}
        assert serial_keys, "reference run captured nothing"
        assert {key[0] for key in serial_keys} <= set(range(len(texts)))

        with _capture() as recorder:
            with self._pool(annotator) as pool:
                pooled = pool.annotate_batch(texts, chunk_size=2)
            captured = recorder.records()
        annotations_equal(serial, pooled)
        assert {r.key for r in captured} == serial_keys
        ranks = {r.worker for r in captured}
        assert ranks <= {0, 1} and -1 not in ranks
        assert len(ranks) == 2, "expected records from both workers"
        for record in captured:
            assert record.tier
            assert record.surface

    def test_pool_annotations_identical_with_provenance_on_vs_off(
        self, annotator, texts
    ):
        with self._pool(annotator) as pool:
            plain = pool.annotate_batch(texts, chunk_size=2)
        with _capture():
            with self._pool(annotator) as pool:
                observed = pool.annotate_batch(texts, chunk_size=2)
        annotations_equal(plain, observed)

    def test_live_provenance_visible_mid_run_and_over_http(
        self, annotator, texts
    ):
        from repro.obs import exporter
        from repro.obs.exporter import TelemetryServer, collect_provenance

        with _capture():
            with self._pool(annotator, telemetry_interval=0.0) as pool:
                pool.annotate_batch(texts[:8], chunk_size=2)
                rows = pool.live_provenance()
                assert rows, "no worker shipped provenance mid-run"
                assert all(row["worker"] >= 0 for row in rows)
                merged = collect_provenance()
                assert merged["active"] is True
                assert merged["num_records"] >= len(
                    {(r["sentence_id"], r["mention_index"]) for r in rows}
                )
                server = TelemetryServer(port=0).start()
                try:
                    with urllib.request.urlopen(
                        f"{server.url}/provenance", timeout=5
                    ) as response:
                        body = json.loads(response.read())
                finally:
                    server.stop()
                assert body["active"] is True
                assert body["num_records"] == merged["num_records"]
                assert {r["sentence_id"] for r in body["records"]} == {
                    r["sentence_id"] for r in merged["records"]
                }
            assert exporter._provenance_sources == {}

    def test_crashed_worker_last_shipped_records_survive(
        self, annotator, texts
    ):
        # Mirror of the dead-worker telemetry recovery: interval=0 ships
        # a cumulative snapshot after every task, so a SIGKILLed
        # worker's records still reach the owner ring via the final
        # merge's periodic-snapshot fallback.
        with _capture() as recorder:
            with self._pool(annotator, telemetry_interval=0.0) as pool:
                pool.annotate_batch(texts[:12], chunk_size=2)
                shipped = {
                    row["worker"] for row in pool.live_provenance()
                }
                assert shipped, "no worker shipped provenance"
                victim = sorted(shipped)[0]
                os.kill(pool.worker_pids()[victim], signal.SIGKILL)
                deadline = time.monotonic() + 10.0
                while (
                    pool._procs[victim].is_alive()
                    and time.monotonic() < deadline
                ):
                    time.sleep(0.05)
                assert not pool._procs[victim].is_alive()
            captured = recorder.records()
        victims = [r for r in captured if r.worker == victim]
        assert victims, "dead worker's shipped records were lost"
        for record in victims:
            assert record.tier
            assert record.candidate_ids


# ----------------------------------------------------------------------
# CLI: --provenance-out + repro explain
# ----------------------------------------------------------------------
class TestExplainCli:
    def _audit_file(self, tmp_path):
        path = tmp_path / "audit.jsonl"
        rec = ProvenanceRecorder(capacity=16)
        rec.record(
            4, 0, surface="Springfield", alias="springfield", tier="tier0",
            reason=REASON_CONFIDENT, candidate_ids=[11, 12],
            prior_scores=[0.7, 0.3], predicted_entity_id=11,
            gold_entity_id=11, margin=0.4, confidence=0.7, slices=["torso"],
        )
        rec.record(
            5, 1, surface="Springfield, MO", alias="springfield",
            tier="model", reason="margin-too-small", candidate_ids=[11, 13],
            prior_scores=[0.5, 0.5], model_scores=[0.2, 0.8],
            predicted_entity_id=13, gold_entity_id=11, worker=1,
            slices=["tail"],
        )
        rec.export_jsonl(str(path))
        return path

    def test_explain_by_sentence_and_mention(self, tmp_path, capsys):
        path = self._audit_file(tmp_path)
        assert cli.main(["explain", str(path), "--sentence", "5", "--mention", "1"]) == 0
        out = capsys.readouterr().out
        assert "sentence 5 mention 1" in out
        assert "reason=margin-too-small" in out
        assert "13: prior=0.5000 model=0.8000 *" in out

    def test_explain_filters_and_json(self, tmp_path, capsys):
        path = self._audit_file(tmp_path)
        assert cli.main(["explain", str(path), "--slice", "tail", "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert [row["sentence_id"] for row in rows] == [5]
        assert cli.main(["explain", str(path), "--tier", "tier0"]) == 0
        assert "Springfield" in capsys.readouterr().out
        assert cli.main(["explain", str(path), "--reason", "type-veto"]) == 1
        assert "no matching decision records" in capsys.readouterr().err

    def test_evaluate_cli_writes_complete_audit(self, tmp_path, capsys):
        # End to end through the real CLI: every mention of the split
        # must land in the JSONL, predictions unchanged vs. a plain run.
        root = tmp_path
        world_path = str(root / "world.npz")
        corpus_path = str(root / "corpus.json")
        model_path = str(root / "model.npz")
        audit_path = str(root / "audit.jsonl")
        assert cli.main([
            "generate-world", "--entities", "80", "--seed", "3",
            "--out", world_path,
        ]) == 0
        assert cli.main([
            "generate-corpus", "--world", world_path, "--pages", "20",
            "--seed", "3", "--out", corpus_path,
        ]) == 0
        assert cli.main([
            "train", "--world", world_path, "--corpus", corpus_path,
            "--epochs", "1", "--out", model_path,
        ]) == 0
        capsys.readouterr()
        assert cli.main([
            "evaluate", "--world", world_path, "--corpus", corpus_path,
            "--model", model_path, "--cascade",
        ]) == 0
        plain_table = capsys.readouterr().out
        assert cli.main([
            "evaluate", "--world", world_path, "--corpus", corpus_path,
            "--model", model_path, "--cascade",
            "--provenance-out", audit_path,
        ]) == 0
        observed_table = capsys.readouterr().out
        assert observed_table == plain_table
        assert not obs.enabled  # teardown disabled the plane again
        assert not provenance.active
        records = provenance.load_jsonl(audit_path)
        assert records
        keys = {r.key for r in records}
        assert len(keys) == len(records), "duplicate audit keys"
        for record in records:
            assert record.tier in ("tier0", "model")
            assert record.reason
            assert record.candidate_ids
            assert record.slices, "owner-side slice stamping missing"
        capsys.readouterr()
        assert cli.main([
            "explain", audit_path, "--tier", "tier0", "--limit", "2",
            "--world", world_path,
        ]) == 0
        out = capsys.readouterr().out
        assert "reason=confident" in out
        assert "(" in out  # titles resolved from the world KB


# ----------------------------------------------------------------------
# Report drill-down: worst failures per slice link to full records
# ----------------------------------------------------------------------
class TestReportDrilldown:
    def test_slice_examples_attach_and_render(self, world, model, dataset, corpus):
        from repro.corpus.stats import EntityCounts as Counts
        from repro.obs.report import RunReport, render_html

        counts = Counts.from_corpus(corpus, world.num_entities)
        with _capture():
            records = cascade_predict(
                model, dataset, CascadePolicy(), kb=world.kb
            )
            report = RunReport.build(
                name="drill", records=records, counts=counts
            )
        failed = [
            p for p in records
            if p.gold_entity_id >= 0
            and p.predicted_entity_id != p.gold_entity_id
        ]
        assert failed, "fixture run must produce at least one failure"
        with_examples = [s for s in report.slices.values() if s.examples]
        assert with_examples, "no slice captured drill-down examples"
        for entry in with_examples:
            assert len(entry.examples) <= 3
            for example in entry.examples:
                assert example["predicted_entity_id"] != example["gold_entity_id"]
                assert example["reason"]
        # Examples survive the JSON round trip and reach the HTML.
        reloaded = RunReport.from_dict(report.to_dict())
        assert {
            name: s.examples for name, s in reloaded.slices.items()
        } == {name: s.examples for name, s in report.slices.items()}
        html = render_html(report)
        assert "Failure drill-down (decision provenance)" in html
        assert "details class=\"examples\"" in html

    def test_no_examples_without_provenance(self, world, model, dataset, corpus):
        from repro.corpus.stats import EntityCounts as Counts
        from repro.obs.report import RunReport

        counts = Counts.from_corpus(corpus, world.num_entities)
        with obs.scope(fresh=True):
            records = cascade_predict(
                model, dataset, CascadePolicy(), kb=world.kb
            )
            report = RunReport.build(
                name="plain", records=records, counts=counts
            )
        assert all(s.examples == [] for s in report.slices.values())
