"""Tests for the Bootleg model, its modules, regularization, and trainer."""

import numpy as np
import pytest

from repro.baselines import NedBaseConfig, NedBaseModel
from repro.core import (
    BootlegConfig,
    BootlegModel,
    Ent2Ent,
    KG2Ent,
    Phrase2Ent,
    RegularizationScheme,
    TrainConfig,
    Trainer,
    make_scheme,
    predict,
)
from repro.core.regularization import P_MAX, P_MIN
from repro.corpus import (
    CorpusConfig,
    EntityCounts,
    NedDataset,
    build_vocabulary,
    generate_corpus,
)
from repro.errors import ConfigError, TrainingError
from repro.kb import WorldConfig, generate_world
from repro.nn import Tensor
from repro.nn.loss import IGNORE_INDEX


@pytest.fixture(scope="module")
def world():
    return generate_world(WorldConfig(num_entities=200, seed=7))


@pytest.fixture(scope="module")
def corpus(world):
    return generate_corpus(world, CorpusConfig(num_pages=40, seed=7))


@pytest.fixture(scope="module")
def vocab(corpus):
    return build_vocabulary(corpus)


@pytest.fixture(scope="module")
def counts(corpus, world):
    return EntityCounts.from_corpus(corpus, world.num_entities)


@pytest.fixture(scope="module")
def train_dataset(world, corpus, vocab):
    return NedDataset(corpus, "train", vocab, world.candidate_map, 4, kgs=[world.kg])


@pytest.fixture(scope="module")
def model(world, vocab, counts):
    return BootlegModel(
        BootlegConfig(num_candidates=4, dropout=0.0),
        world.kb,
        vocab,
        entity_counts=counts.counts,
    )


class TestRegularizationSchemes:
    def test_none_is_zero(self):
        scheme = make_scheme("none")
        np.testing.assert_allclose(scheme.probabilities(np.array([0, 1, 100])), 0.0)

    def test_fixed(self):
        scheme = make_scheme("fixed", value=0.8)
        np.testing.assert_allclose(scheme.probabilities(np.array([1, 50])), 0.8)

    def test_inv_pop_pow_anchors(self):
        scheme = make_scheme("inv_pop_pow", max_count=10000)
        probs = scheme.probabilities(np.array([1, 10000]))
        assert probs[0] == pytest.approx(P_MAX)
        assert probs[1] == pytest.approx(P_MIN, abs=1e-6)

    def test_inv_pop_pow_matches_paper_exponent(self):
        # f(x) = 0.95 x^-0.32 for max_count=10000 (Appendix B).
        scheme = make_scheme("inv_pop_pow", max_count=10000)
        probs = scheme.probabilities(np.array([100]))
        assert probs[0] == pytest.approx(0.95 * 100**-0.3197, abs=1e-3)

    @pytest.mark.parametrize("name", ["inv_pop_pow", "inv_pop_log", "inv_pop_lin"])
    def test_inverse_schemes_monotone_decreasing(self, name):
        scheme = make_scheme(name, max_count=1000)
        counts = np.array([1, 5, 20, 100, 500, 1000])
        probs = scheme.probabilities(counts)
        assert np.all(np.diff(probs) <= 1e-12)

    def test_pop_pow_monotone_increasing(self):
        scheme = make_scheme("pop_pow", max_count=1000)
        probs = scheme.probabilities(np.array([1, 10, 100, 1000]))
        assert np.all(np.diff(probs) >= -1e-12)

    def test_unseen_gets_maximum(self):
        for name in ("inv_pop_pow", "pop_pow", "inv_pop_log"):
            scheme = make_scheme(name, max_count=100)
            assert scheme.probabilities(np.array([0]))[0] == pytest.approx(P_MAX)

    def test_clipping(self):
        scheme = make_scheme("inv_pop_pow", max_count=100)
        probs = scheme.probabilities(np.array([1, 100, 10**9]))
        assert probs.min() >= P_MIN
        assert probs.max() <= P_MAX

    def test_unknown_scheme(self):
        with pytest.raises(ConfigError):
            make_scheme("dropout")

    def test_invalid_fixed_value(self):
        with pytest.raises(ConfigError):
            make_scheme("fixed", value=1.5)

    def test_negative_counts_rejected(self):
        with pytest.raises(ConfigError):
            make_scheme("fixed", value=0.5).probabilities(np.array([-1]))

    def test_repr(self):
        assert "fixed" in repr(make_scheme("fixed", value=0.5))
        assert "inv_pop_pow" in repr(make_scheme("inv_pop_pow"))


class TestKG2EntModule:
    def test_shapes_and_skip(self):
        module = KG2Ent()
        entities = Tensor(np.random.default_rng(0).normal(size=(2, 4, 8)))
        adjacency = np.zeros((2, 4, 4))
        out = module(entities, adjacency)
        assert out.shape == (2, 4, 8)

    def test_connected_candidates_mix(self):
        module = KG2Ent(initial_self_weight=0.0, use_skip=False)
        entities = Tensor(np.eye(3)[None, :, :].astype(float))
        adjacency = np.zeros((1, 3, 3))
        adjacency[0, 0, 1] = adjacency[0, 1, 0] = 50.0  # hard edge
        out = module(entities, adjacency)
        # Candidate 0 should now mostly carry candidate 1's representation.
        assert out.data[0, 0, 1] > 0.9

    def test_skip_preserves_input(self):
        module = KG2Ent(use_skip=True)
        entities = Tensor(np.ones((1, 2, 4)))
        out = module(entities, np.zeros((1, 2, 2)))
        assert (out.data >= 1.0).all()

    def test_pad_mask_blocks_attention(self):
        module = KG2Ent(initial_self_weight=0.0, use_skip=False)
        rng = np.random.default_rng(1)
        entities_a = rng.normal(size=(1, 3, 4))
        entities_b = entities_a.copy()
        entities_b[0, 2] = 100.0
        pad = np.array([[False, False, True]])
        adjacency = np.ones((1, 3, 3))
        out_a = module(Tensor(entities_a), adjacency, candidate_pad_mask=pad)
        out_b = module(Tensor(entities_b), adjacency, candidate_pad_mask=pad)
        np.testing.assert_allclose(out_a.data[0, :2], out_b.data[0, :2], atol=1e-9)

    def test_self_weight_is_learnable(self):
        module = KG2Ent()
        entities = Tensor(np.random.default_rng(0).normal(size=(1, 3, 4)))
        out = module(entities, np.random.default_rng(1).random((1, 3, 3)))
        (out**2).sum().backward()
        assert module.self_weight.grad is not None


class TestPhraseAndEntModules:
    def test_phrase2ent_shape(self):
        rng = np.random.default_rng(0)
        module = Phrase2Ent(16, 4, rng, dropout=0.0)
        entities = Tensor(rng.normal(size=(2, 6, 16)))
        words = Tensor(rng.normal(size=(2, 9, 16)))
        assert module(entities, words).shape == (2, 6, 16)

    def test_ent2ent_shape(self):
        rng = np.random.default_rng(0)
        module = Ent2Ent(16, 4, rng, dropout=0.0)
        entities = Tensor(rng.normal(size=(2, 6, 16)))
        assert module(entities).shape == (2, 6, 16)


class TestBootlegModel:
    def test_forward_shapes(self, model, train_dataset):
        batch = train_dataset.collate(train_dataset.encoded[:3])
        output = model(batch)
        b, m, k = batch.candidate_ids.shape
        assert output.scores.shape == (b, m, k)
        assert output.contextual_entities.shape == (b, m, k, model.config.hidden_dim)
        assert output.type_logits.shape[:2] == (b, m)

    def test_invalid_candidates_get_neg_inf(self, model, train_dataset):
        batch = train_dataset.collate(train_dataset.encoded[:3])
        output = model(batch)
        masked = output.scores.data[~batch.candidate_mask]
        assert (masked <= -1e8).all()

    def test_predictions_within_candidates(self, model, train_dataset):
        batch = train_dataset.collate(train_dataset.encoded[:4])
        output = model(batch)
        predicted = model.predictions(batch, output)
        for b in range(batch.size):
            for m in range(batch.candidate_ids.shape[1]):
                if batch.mention_mask[b, m]:
                    assert predicted[b, m] in batch.candidate_ids[b, m]
                else:
                    assert predicted[b, m] == -1

    def test_loss_is_finite_scalar(self, model, train_dataset):
        batch = train_dataset.collate(train_dataset.encoded[:4])
        output = model(batch)
        loss = model.loss(batch, output)
        assert np.isfinite(loss.item())

    def test_entity_drop_only_in_training(self, model, train_dataset):
        batch = train_dataset.collate(train_dataset.encoded[:2])
        model.eval()
        assert model._sample_entity_drop(batch.candidate_ids) is None
        model.train()
        drop = model._sample_entity_drop(batch.candidate_ids)
        assert drop is not None and drop.shape == batch.candidate_ids.shape
        model.eval()

    def test_mask_probabilities_follow_counts(self, model, counts):
        probs = model.mask_probabilities
        rare = counts.bucket_ids("tail")
        popular = np.argsort(counts.counts)[-5:]
        assert probs[rare].mean() > probs[popular].mean()

    def test_set_entity_counts_shape_check(self, model):
        with pytest.raises(ConfigError):
            model.set_entity_counts(np.zeros(3))

    def test_ablation_configs_forward(self, world, vocab, counts, train_dataset):
        batch = train_dataset.collate(train_dataset.encoded[:2])
        variants = [
            BootlegConfig(num_candidates=4, use_entity=False, use_relations=False,
                          num_kg_modules=0),
            BootlegConfig(num_candidates=4, use_types=False, use_relations=True,
                          use_type_prediction=False),
            BootlegConfig(num_candidates=4, use_types=False, use_entity=False,
                          use_type_prediction=False),
            BootlegConfig(num_candidates=4, num_layers=2),
            BootlegConfig(num_candidates=4, use_position_encoding=False),
            BootlegConfig(num_candidates=4, use_ensemble_scoring=False),
            BootlegConfig(num_candidates=4, use_title_feature=True),
        ]
        for config in variants:
            variant = BootlegModel(config, world.kb, vocab, entity_counts=counts.counts)
            output = variant(batch)
            assert np.isfinite(
                output.scores.data[batch.candidate_mask]
            ).all(), f"non-finite scores for {config}"

    def test_all_signals_disabled_rejected(self, world, vocab):
        with pytest.raises(ConfigError):
            BootlegModel(
                BootlegConfig(
                    use_entity=False, use_types=False, use_relations=False,
                    use_type_prediction=False,
                ),
                world.kb,
                vocab,
            )

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            BootlegConfig(num_layers=0).validate()

    def test_frozen_encoder_receives_no_gradient(self, world, vocab, counts, train_dataset):
        config = BootlegConfig(num_candidates=4, freeze_encoder=True, dropout=0.0)
        frozen = BootlegModel(config, world.kb, vocab, entity_counts=counts.counts)
        batch = train_dataset.collate(train_dataset.encoded[:2])
        output = frozen(batch)
        frozen.loss(batch, output).backward()
        assert frozen.encoder.token_embedding.weight.grad is None
        assert frozen.embedder.fuse.weight.grad is not None


class TestNedBase:
    def test_forward_and_loss(self, world, vocab, train_dataset):
        model = NedBaseModel(NedBaseConfig(dropout=0.0), world.kb, vocab)
        batch = train_dataset.collate(train_dataset.encoded[:3])
        output = model(batch)
        assert output.scores.shape == batch.candidate_ids.shape
        assert np.isfinite(model.loss(batch, output).item())

    def test_predictions_respect_mask(self, world, vocab, train_dataset):
        model = NedBaseModel(NedBaseConfig(dropout=0.0), world.kb, vocab)
        batch = train_dataset.collate(train_dataset.encoded[:3])
        predicted = model.predictions(batch, model(batch))
        assert (predicted[~batch.mention_mask] == -1).all()


class TestTrainer:
    def test_loss_decreases(self, world, vocab, counts, train_dataset):
        model = BootlegModel(
            BootlegConfig(num_candidates=4), world.kb, vocab,
            entity_counts=counts.counts,
        )
        trainer = Trainer(
            model, train_dataset, TrainConfig(epochs=3, batch_size=16, learning_rate=3e-3)
        )
        history = trainer.train()
        assert len(history) == 3
        assert history[-1].mean_loss < history[0].mean_loss

    def test_predict_covers_all_mentions(self, world, vocab, counts, train_dataset):
        model = BootlegModel(
            BootlegConfig(num_candidates=4), world.kb, vocab,
            entity_counts=counts.counts,
        )
        predictions = predict(model, train_dataset)
        expected = sum(item.num_mentions for item in train_dataset.encoded)
        assert len(predictions) == expected

    def test_prediction_records_consistent(self, world, vocab, counts, train_dataset):
        model = BootlegModel(
            BootlegConfig(num_candidates=4), world.kb, vocab,
            entity_counts=counts.counts,
        )
        for record in predict(model, train_dataset)[:100]:
            assert record.predicted_entity_id in record.candidate_ids
            assert record.candidate_scores.shape == record.candidate_ids.shape

    def test_train_config_validation(self):
        with pytest.raises(ConfigError):
            TrainConfig(batch_size=0).validate()
        with pytest.raises(ConfigError):
            TrainConfig(learning_rate=0).validate()

    def test_empty_dataset_rejected(self, world, vocab, corpus, counts):
        dataset = NedDataset(corpus, "train", vocab, world.candidate_map, 4)
        dataset.encoded = []
        model = BootlegModel(
            BootlegConfig(num_candidates=4), world.kb, vocab,
            entity_counts=counts.counts,
        )
        with pytest.raises(TrainingError):
            Trainer(model, dataset).train()

    def test_deterministic_training(self, world, vocab, counts, train_dataset):
        def make_and_train():
            model = BootlegModel(
                BootlegConfig(num_candidates=4, seed=11), world.kb, vocab,
                entity_counts=counts.counts,
            )
            Trainer(
                model, train_dataset,
                TrainConfig(epochs=1, batch_size=16, seed=5),
            ).train()
            return model.score_vector.data.copy()

        np.testing.assert_allclose(make_and_train(), make_and_train())
