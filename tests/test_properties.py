"""Property-based tests (hypothesis) for core data structures/invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.regularization import P_MAX, P_MIN, make_scheme
from repro.corpus.vocab import Vocabulary
from repro.kb import CandidateMap, KnowledgeGraph, Triple, zipf_weights
from repro.nn import Tensor, concat, cross_entropy
from repro.nn.tensor import _unbroadcast
from repro.utils.rng import spawn_rng
from repro.utils.tables import format_table

settings.register_profile("repro", deadline=None, max_examples=40)
settings.load_profile("repro")

small_floats = st.floats(-10, 10, allow_nan=False, allow_infinity=False)


def arrays(draw, shape):
    return np.array(
        draw(
            st.lists(
                st.lists(small_floats, min_size=shape[1], max_size=shape[1]),
                min_size=shape[0],
                max_size=shape[0],
            )
        )
    )


class TestTensorProperties:
    @given(
        rows=st.integers(1, 5),
        cols=st.integers(1, 6),
        seed=st.integers(0, 1000),
    )
    def test_softmax_rows_are_distributions(self, rows, cols, seed):
        data = np.random.default_rng(seed).normal(size=(rows, cols)) * 5
        out = Tensor(data).softmax(axis=-1).data
        assert (out >= 0).all()
        np.testing.assert_allclose(out.sum(axis=-1), 1.0, atol=1e-12)

    @given(
        rows=st.integers(1, 5),
        cols=st.integers(2, 6),
        seed=st.integers(0, 1000),
    )
    def test_log_softmax_consistent_with_softmax(self, rows, cols, seed):
        data = np.random.default_rng(seed).normal(size=(rows, cols)) * 3
        tensor = Tensor(data)
        np.testing.assert_allclose(
            tensor.log_softmax(axis=-1).data,
            np.log(tensor.softmax(axis=-1).data),
            atol=1e-10,
        )

    @given(
        shape=st.sampled_from([(3, 4), (2, 1), (1, 5), (4, 4)]),
        seed=st.integers(0, 100),
    )
    def test_unbroadcast_inverts_broadcast(self, shape, seed):
        rng = np.random.default_rng(seed)
        base = rng.normal(size=shape)
        broadcast = np.broadcast_to(base, (6, *shape))
        reduced = _unbroadcast(broadcast.copy(), shape)
        np.testing.assert_allclose(reduced, base * 6)

    @given(seed=st.integers(0, 500), scale=st.floats(0.1, 5))
    def test_add_mul_gradients_linear(self, seed, scale):
        rng = np.random.default_rng(seed)
        a = Tensor(rng.normal(size=(3, 3)), requires_grad=True)
        (a * scale).sum().backward()
        np.testing.assert_allclose(a.grad, scale)

    @given(
        parts=st.lists(st.integers(1, 4), min_size=2, max_size=4),
        seed=st.integers(0, 100),
    )
    def test_concat_preserves_content(self, parts, seed):
        rng = np.random.default_rng(seed)
        tensors = [Tensor(rng.normal(size=(2, p))) for p in parts]
        merged = concat(tensors, axis=-1)
        assert merged.shape == (2, sum(parts))
        offset = 0
        for tensor, width in zip(tensors, parts):
            np.testing.assert_allclose(
                merged.data[:, offset : offset + width], tensor.data
            )
            offset += width

    @given(
        num_classes=st.integers(2, 8),
        batch=st.integers(1, 6),
        seed=st.integers(0, 200),
    )
    def test_cross_entropy_nonnegative_and_uniform_bound(self, num_classes, batch, seed):
        rng = np.random.default_rng(seed)
        logits = Tensor(rng.normal(size=(batch, num_classes)))
        targets = rng.integers(0, num_classes, size=batch)
        loss = cross_entropy(logits, targets).item()
        assert loss >= 0
        uniform = cross_entropy(
            Tensor(np.zeros((batch, num_classes))), targets
        ).item()
        np.testing.assert_allclose(uniform, np.log(num_classes), atol=1e-12)


class TestCandidateMapProperties:
    @given(
        entries=st.lists(
            st.tuples(st.integers(0, 20), st.floats(0.01, 100)),
            min_size=1,
            max_size=20,
        )
    )
    def test_ranking_sorted_by_total_score(self, entries):
        cmap = CandidateMap()
        for entity_id, score in entries:
            cmap.add("alias", entity_id, score)
        ranked = cmap.candidates("alias")
        scores = [s for _, s in ranked]
        assert scores == sorted(scores, reverse=True)
        totals: dict[int, float] = {}
        for entity_id, score in entries:
            totals[entity_id] = totals.get(entity_id, 0.0) + score
        assert dict(ranked) == pytest.approx(totals)

    @given(
        entries=st.lists(
            st.tuples(st.integers(0, 10), st.floats(0.01, 10)),
            min_size=1,
            max_size=10,
        ),
        k=st.integers(1, 5),
    )
    def test_topk_is_prefix_of_full_ranking(self, entries, k):
        cmap = CandidateMap()
        for entity_id, score in entries:
            cmap.add("x", entity_id, score)
        full = cmap.candidate_ids("x")
        assert cmap.candidate_ids("x", k) == full[:k]

    @given(
        entries=st.lists(
            st.tuples(st.integers(0, 10), st.floats(0.01, 10)),
            min_size=1,
            max_size=10,
        )
    )
    def test_priors_form_distribution(self, entries):
        cmap = CandidateMap()
        for entity_id, score in entries:
            cmap.add("x", entity_id, score)
        ids = cmap.candidate_ids("x")
        total = sum(cmap.prior("x", entity_id) for entity_id in ids)
        assert total == pytest.approx(1.0)


class TestKnowledgeGraphProperties:
    @given(
        edges=st.lists(
            st.tuples(st.integers(0, 9), st.integers(0, 4), st.integers(0, 9)),
            max_size=20,
        )
    )
    def test_adjacency_symmetric(self, edges):
        kg = KnowledgeGraph(10, [Triple(s, r, o) for s, r, o in edges])
        for a in range(10):
            for b in range(10):
                assert kg.connected(a, b) == kg.connected(b, a)

    @given(
        edges=st.lists(
            st.tuples(st.integers(0, 7), st.integers(0, 3), st.integers(0, 7)),
            max_size=15,
        ),
        ids=st.lists(st.integers(-1, 7), min_size=2, max_size=6),
    )
    def test_candidate_adjacency_symmetric_nonnegative(self, edges, ids):
        kg = KnowledgeGraph(8, [Triple(s, r, o) for s, r, o in edges])
        matrix = kg.candidate_adjacency(np.array(ids))
        np.testing.assert_allclose(matrix, matrix.T)
        assert (matrix >= 0).all()
        assert np.diag(matrix).sum() == 0


class TestRegularizationProperties:
    @given(
        name=st.sampled_from(["inv_pop_pow", "inv_pop_log", "inv_pop_lin", "pop_pow"]),
        counts=st.lists(st.integers(0, 100000), min_size=1, max_size=30),
        max_count=st.integers(2, 100000),
    )
    def test_probabilities_bounded(self, name, counts, max_count):
        scheme = make_scheme(name, max_count=max_count)
        probs = scheme.probabilities(np.array(counts))
        assert (probs >= P_MIN - 1e-12).all()
        assert (probs <= P_MAX + 1e-12).all()

    @given(counts=st.lists(st.integers(1, 10000), min_size=2, max_size=20))
    def test_inverse_schemes_order_preserving(self, counts):
        scheme = make_scheme("inv_pop_pow", max_count=10000)
        arr = np.array(sorted(counts))
        probs = scheme.probabilities(arr)
        assert (np.diff(probs) <= 1e-12).all()


class TestVocabularyProperties:
    @given(tokens=st.lists(st.text(alphabet="abcxyz", min_size=1, max_size=5), max_size=30))
    def test_encode_decode_roundtrip(self, tokens):
        vocab = Vocabulary.build([tokens])
        ids = vocab.encode(tokens)
        assert vocab.decode(ids) == tokens

    @given(tokens=st.lists(st.text(alphabet="abc", min_size=1, max_size=3), max_size=20))
    def test_ids_dense_and_unique(self, tokens):
        vocab = Vocabulary.build([tokens])
        ids = {vocab.encode_token(t) for t in tokens}
        assert all(0 <= i < len(vocab) for i in ids)


class TestMiscProperties:
    @given(n=st.integers(1, 500), exponent=st.floats(0.1, 3))
    def test_zipf_weights_decreasing_positive(self, n, exponent):
        weights = zipf_weights(n, exponent)
        assert (weights > 0).all()
        assert (np.diff(weights) <= 0).all()

    @given(seed=st.integers(0, 10000))
    def test_spawn_rng_reproducible_and_label_sensitive(self, seed):
        a1 = spawn_rng(seed, "x").random(4)
        a2 = spawn_rng(seed, "x").random(4)
        b = spawn_rng(seed, "y").random(4)
        np.testing.assert_allclose(a1, a2)
        assert not np.allclose(a1, b)

    @given(
        rows=st.lists(
            st.tuples(
                st.text(alphabet="abc xyz", max_size=6),
                st.floats(0, 100, allow_nan=False),
            ),
            min_size=1,
            max_size=6,
        )
    )
    def test_format_table_row_count(self, rows):
        text = format_table(["a", "b"], [list(r) for r in rows])
        assert len(text.splitlines()) == 2 + len(rows)
