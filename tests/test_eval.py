"""Tests for metrics, slices, pattern mining, and error buckets."""

import numpy as np
import pytest

from repro.corpus import (
    CorpusConfig,
    EntityCounts,
    generate_corpus,
)
from repro.eval import (
    MentionPrediction,
    evaluate_predictions,
    f1_by_bucket,
    f1_by_occurrence_bins,
    filter_predictions,
    micro_f1,
    prf_from_counts,
)
from repro.eval.errors import (
    ERROR_BUCKETS,
    classify_errors,
    exact_match_disagreements,
)
from repro.eval.patterns import (
    PatternSlicer,
    mine_affordance_keywords,
    slice_coverage,
    slice_predictions,
)
from repro.eval.slices import error_rate_by_rare_proportion
from repro.kb import WorldConfig, generate_world


@pytest.fixture(scope="module")
def world():
    return generate_world(WorldConfig(num_entities=300, seed=3))


@pytest.fixture(scope="module")
def corpus(world):
    return generate_corpus(world, CorpusConfig(num_pages=150, seed=5))


def make_prediction(
    gold=1,
    predicted=1,
    sentence_id=0,
    mention_index=0,
    evaluable=True,
    is_weak=False,
    surface="x",
    candidates=(1, 2),
):
    ids = np.array(list(candidates) + [-1] * (4 - len(candidates)))
    return MentionPrediction(
        sentence_id=sentence_id,
        mention_index=mention_index,
        surface=surface,
        gold_entity_id=gold,
        predicted_entity_id=predicted,
        candidate_ids=ids,
        candidate_scores=np.linspace(1, 0, 4),
        evaluable=evaluable,
        is_weak=is_weak,
    )


class TestMetrics:
    def test_micro_f1_basic(self):
        preds = [make_prediction(), make_prediction(predicted=2)]
        assert micro_f1(preds) == pytest.approx(50.0)

    def test_filters_weak_and_non_evaluable(self):
        preds = [
            make_prediction(),
            make_prediction(predicted=2, is_weak=True),
            make_prediction(predicted=2, evaluable=False),
        ]
        assert micro_f1(preds) == pytest.approx(100.0)
        assert len(filter_predictions(preds)) == 1

    def test_empty_is_zero(self):
        assert micro_f1([]) == 0.0

    def test_prf_from_counts(self):
        prf = prf_from_counts(8, 10, 16)
        assert prf.precision == pytest.approx(0.8)
        assert prf.recall == pytest.approx(0.5)
        assert prf.f1 == pytest.approx(2 * 0.8 * 0.5 / 1.3)
        assert prf.as_row()[2] == pytest.approx(100 * prf.f1)

    def test_prf_zero_denominators(self):
        prf = prf_from_counts(0, 0, 0)
        assert prf.precision == 0.0 and prf.recall == 0.0 and prf.f1 == 0.0

    def test_evaluate_predictions(self):
        preds = [make_prediction(), make_prediction(predicted=2)]
        prf = evaluate_predictions(preds)
        assert prf.num_gold == 2
        assert prf.f1 == pytest.approx(0.5)


class TestBucketSlicing:
    def test_f1_by_bucket_routing(self):
        counts = EntityCounts(np.array([0, 5, 500, 2000]))
        preds = [
            make_prediction(gold=0, predicted=0),  # unseen, correct
            make_prediction(gold=1, predicted=0),  # tail, wrong
            make_prediction(gold=2, predicted=2),  # torso, correct
            make_prediction(gold=3, predicted=3),  # head, correct
        ]
        result = f1_by_bucket(preds, counts)
        assert result["unseen"] == pytest.approx(100.0)
        assert result["tail"] == pytest.approx(0.0)
        assert result["torso"] == pytest.approx(100.0)
        assert result["head"] == pytest.approx(100.0)
        assert result["all"] == pytest.approx(75.0)

    def test_occurrence_bins(self):
        counts = EntityCounts(np.array([0, 2, 50]))
        preds = [
            make_prediction(gold=0, predicted=0),
            make_prediction(gold=1, predicted=2),
            make_prediction(gold=2, predicted=2),
        ]
        bins = f1_by_occurrence_bins(preds, counts, edges=(0, 1, 10))
        assert bins[0].num_mentions == 1 and bins[0].f1 == pytest.approx(100.0)
        assert bins[1].num_mentions == 1 and bins[1].f1 == pytest.approx(0.0)
        assert bins[2].num_mentions == 1
        assert bins[2].label == ">=10"

    def test_rare_proportion_rows(self):
        counts = EntityCounts(np.array([0, 2, 500, 600]))
        groups = {0: [0, 1], 1: [2, 3]}  # group 0 all rare, group 1 none
        preds = [
            make_prediction(gold=0, predicted=1),
            make_prediction(gold=2, predicted=2),
        ]
        rows = error_rate_by_rare_proportion(preds, counts, groups, num_bins=2)
        assert len(rows) == 2
        low, high = rows
        assert low[1] == pytest.approx(0.0)  # popular group: correct
        assert high[1] == pytest.approx(1.0)  # rare group: error


class TestAffordanceMining:
    def test_recovers_generator_keywords(self, world, corpus):
        keywords = mine_affordance_keywords(corpus, world.kb)
        hits, total = 0, 0
        for record in world.kb.types():
            mined = keywords.get(record.type_id)
            if mined is None:
                continue
            total += 1
            if set(record.affordance_words) & mined:
                hits += 1
        assert total > 10
        assert hits / total > 0.8

    def test_keyword_counts_capped(self, world, corpus):
        keywords = mine_affordance_keywords(corpus, world.kb, top_k=5)
        assert all(len(v) <= 5 for v in keywords.values())


class TestPatternSlicer:
    @pytest.fixture(scope="class")
    def slicer(self, world, corpus):
        keywords = mine_affordance_keywords(corpus, world.kb)
        return PatternSlicer(world.kb, world.kg, keywords)

    @pytest.fixture(scope="class")
    def membership(self, slicer, corpus):
        return slicer.build_membership(corpus.sentences("val"))

    def test_all_slices_populated(self, membership):
        for name in ("consistency", "kg_relation", "affordance"):
            assert membership[name], f"slice {name} is empty"

    def test_affordance_is_largest_slice(self, membership):
        assert len(membership["affordance"]) > len(membership["kg_relation"])
        assert len(membership["kg_relation"]) > len(membership["consistency"])

    def test_entity_slice_has_no_structural_signal(self, slicer, world, corpus):
        membership = slicer.build_membership(corpus.sentences())
        sentences = {s.sentence_id: s for s in corpus.sentences()}
        for sentence_id, index in list(membership["entity"])[:20]:
            mention = sentences[sentence_id].mentions[index]
            entity = world.kb.entity(mention.gold_entity_id)
            assert not entity.type_ids and not entity.relation_ids

    def test_kg_slice_members_connected(self, slicer, world, corpus):
        membership = slicer.build_membership(corpus.sentences())
        sentences = {s.sentence_id: s for s in corpus.sentences()}
        for sentence_id, index in list(membership["kg_relation"])[:20]:
            sentence = sentences[sentence_id]
            gold = sentence.mentions[index].gold_entity_id
            others = [
                m.gold_entity_id for i, m in enumerate(sentence.mentions) if i != index
            ]
            assert any(world.kg.connected(gold, other) for other in others if other != gold)

    def test_consistency_slice_shares_type(self, slicer, world, corpus):
        membership = slicer.build_membership(corpus.sentences())
        sentences = {s.sentence_id: s for s in corpus.sentences()}
        seen = 0
        for sentence_id, index in membership["consistency"]:
            sentence = sentences[sentence_id]
            golds = [m.gold_entity_id for m in sentence.mentions]
            assert len(golds) >= 3
            seen += 1
            if seen > 20:
                break

    def test_slice_predictions_routing(self, membership):
        some_key = next(iter(membership["affordance"]))
        preds = [
            make_prediction(sentence_id=some_key[0], mention_index=some_key[1]),
            make_prediction(sentence_id=10**9, mention_index=0),
        ]
        sliced = slice_predictions(preds, membership)
        assert len(sliced["affordance"]) == 1

    def test_slice_coverage(self, membership, corpus):
        total = corpus.num_mentions("val")
        coverage = slice_coverage(membership, total)
        assert 0 < coverage["affordance"] <= 1.0
        assert coverage["affordance"] > coverage["consistency"]


class TestErrorBuckets:
    def test_classify_errors_on_synthetic(self, world, corpus):
        sentences = {s.sentence_id: s for s in corpus.sentences()}
        # Build artificial errors for each bucket from world structure.
        preds = []
        # Granularity: a child predicted as its parent.
        child = next(e for e in world.kb.entities() if e.parent_id >= 0)
        preds.append(
            make_prediction(
                gold=child.entity_id,
                predicted=child.parent_id,
                surface=child.mention_stem,
                candidates=(child.entity_id, child.parent_id),
            )
        )
        # Numerical: a year entity predicted wrong.
        year_entity = next(e for e in world.kb.entities() if e.year)
        other = next(
            e for e in world.kb.entities()
            if e.mention_stem == year_entity.mention_stem
            and e.entity_id != year_entity.entity_id
        )
        preds.append(
            make_prediction(
                gold=year_entity.entity_id,
                predicted=other.entity_id,
                surface=year_entity.mention_stem,
                candidates=(year_entity.entity_id, other.entity_id),
            )
        )
        # Exact match: surface equals gold title, prediction wrong.
        entity = world.kb.entity(10)
        preds.append(
            make_prediction(
                gold=entity.entity_id,
                predicted=11,
                surface=entity.title,
                candidates=(entity.entity_id, 11),
            )
        )
        report = classify_errors(preds, world.kb, world.kg, sentences)
        assert report.total_errors == 3
        assert len(report.buckets["granularity"]) >= 1
        assert len(report.buckets["numerical"]) >= 1
        assert len(report.buckets["exact_match"]) >= 1
        summary = report.summary()
        assert set(summary) == set(ERROR_BUCKETS)

    def test_correct_predictions_not_counted(self, world, corpus):
        sentences = {s.sentence_id: s for s in corpus.sentences()}
        report = classify_errors(
            [make_prediction()], world.kb, world.kg, sentences
        )
        assert report.total_errors == 0
        assert report.fraction("numerical") == 0.0

    def test_exact_match_disagreements(self, world):
        entity = world.kb.entity(5)
        key = dict(sentence_id=3, mention_index=1)
        model = [
            make_prediction(
                gold=entity.entity_id, predicted=9, surface=entity.title, **key
            )
        ]
        baseline = [
            make_prediction(
                gold=entity.entity_id, predicted=entity.entity_id,
                surface=entity.title, **key,
            )
        ]
        result = exact_match_disagreements(model, baseline, world.kb)
        assert result["num_lost"] == 1
        assert result["exact_match_fraction"] == pytest.approx(1.0)

    def test_no_disagreements(self, world):
        preds = [make_prediction()]
        result = exact_match_disagreements(preds, preds, world.kb)
        assert result["num_lost"] == 0
