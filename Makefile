# Convenience targets for the Bootleg reproduction.

.PHONY: install test lint lint-fast check bench bench-core \
	bench-core-baseline bench-fresh bench-parallel bench-store \
	bench-cascade bench-cascade-baseline bench-summary obs-demo \
	obs-live-demo report-demo examples clean-cache

install:
	pip install -e .

test:
	pytest tests/

# Repo-invariant linter + whole-program pass (import layering, resource
# lifecycles, fork/thread safety) + runtime model-graph verifier
# (docs/ANALYSIS.md). Strict over the package (including the
# instantiated model zoo), warn-only over benchmarks/ and examples/.
# ruff runs when available; the container image does not ship it, so
# its absence is not an error.
lint:
	PYTHONPATH=src python -m repro.cli lint src/repro --project --models
	PYTHONPATH=src python -m repro.cli lint benchmarks examples --warn-only
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src/repro tests; \
	else \
		echo "ruff not installed; skipping style pass"; \
	fi

# Inner-loop lint: per-file rules over files git reports as changed
# only (falls back to the full walk outside a work tree). The
# whole-program pass is skipped — it is inherently full-tree.
lint-fast:
	PYTHONPATH=src python -m repro.cli lint src/repro benchmarks examples \
		--changed-only

# CI gate: invariants first (the whole-program pass runs strict on
# src/repro via `lint`, and warn-only over benchmarks/), then the
# tier-1 test suite, then the parallel layer and the report/aggregation
# path again under the strict spawn start method (everything crossing
# the process boundary must pickle; nothing may rely on fork-inherited
# state).
check: lint
	PYTHONPATH=src python -m repro.cli lint benchmarks --project --warn-only
	PYTHONPATH=src python -m pytest -x -q
	REPRO_PARALLEL_START_METHOD=spawn PYTHONPATH=src \
		python -m pytest tests/test_parallel.py tests/test_report.py \
		tests/test_store.py tests/test_live_obs.py \
		tests/test_cascade.py tests/test_provenance.py -x -q
	$(MAKE) obs-live-demo

test-report:
	pytest tests/ 2>&1 | tee test_output.txt

bench:
	pytest benchmarks/ --benchmark-only

bench-report:
	pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

# Core microbenchmarks (forward pass, annotator throughput, collation)
# compared against the committed baseline; fails on a >20% mean
# regression. The baseline file is never rewritten by this target.
bench-core:
	pytest benchmarks/bench_perf_core.py --benchmark-only \
		--benchmark-json=benchmarks/.bench_core_latest.json
	python benchmarks/compare_to_baseline.py \
		benchmarks/.bench_core_latest.json \
		benchmarks/bench_core_baseline.json --max-regression 0.20

# Explicitly refresh the committed baseline (run on the reference box
# after an intentional perf change, then commit the JSON).
bench-core-baseline:
	pytest benchmarks/bench_perf_core.py --benchmark-only \
		--benchmark-json=benchmarks/bench_core_baseline.json

# Annotator-pool and prefetch speedup vs. the serial path; asserts
# byte-identical outputs and bounded shared-memory overhead, and gates
# the 2x-speedup floor on having >= 4 usable cores (see the script).
# Fails on a >20% mean regression against the committed baseline
# (benchmarks/bench_parallel_baseline.json; refresh it deliberately and
# commit after an intentional perf change).
bench-parallel:
	mkdir -p benchmarks/results
	PYTHONPATH=src python benchmarks/bench_parallel.py \
		--out benchmarks/results/BENCH_parallel.json
	python benchmarks/compare_to_baseline.py \
		benchmarks/results/BENCH_parallel.json \
		benchmarks/bench_parallel_baseline.json \
		--max-regression 0.20

# Entity payload store gates (docs/ENTITY_STORE.md): (a) warm mmap row
# gather within 1.3x of dense, (b) a 1M-entity synthetic payload served
# under a fixed resident budget with store.resident_bytes telemetry,
# (c) byte-identical annotations dense vs mmap. Fails on a >20% mean
# regression against the committed baseline
# (benchmarks/bench_store_baseline.json).
bench-store:
	mkdir -p benchmarks/results
	PYTHONPATH=src python benchmarks/bench_store.py \
		--out benchmarks/results/BENCH_store.json
	python benchmarks/compare_to_baseline.py \
		benchmarks/results/BENCH_store.json \
		benchmarks/bench_store_baseline.json \
		--max-regression 0.20

# Tiered-cascade gates (docs/CASCADE.md): (a) >= 2x end-to-end
# annotation throughput over the full-model path on a head-heavy
# corpus, (b) escalated-mention outputs byte-identical to a standalone
# full-model pass over the escalated documents, (c) `repro report diff
# --fail-on-regression` clean vs the full-model baseline report. Fails
# on a >20% regression against the committed baseline (the
# cascade_speedup entry gates in the higher-is-better direction).
bench-cascade:
	mkdir -p benchmarks/results
	PYTHONPATH=src python benchmarks/bench_cascade.py \
		--out benchmarks/results/BENCH_cascade.json
	python benchmarks/compare_to_baseline.py \
		benchmarks/results/BENCH_cascade.json \
		benchmarks/bench_cascade_baseline.json \
		--max-regression 0.20

# Explicitly refresh the committed cascade baseline (run on the
# reference box after an intentional perf change, then commit the JSON).
bench-cascade-baseline:
	mkdir -p benchmarks/results
	PYTHONPATH=src python benchmarks/bench_cascade.py \
		--out benchmarks/bench_cascade_baseline.json

# Consolidate every benchmarks/results/BENCH_*.json written by the
# suites above into one BENCH_summary.json (suite -> headline means),
# so dashboards and CI annotations read a single file.
bench-summary:
	mkdir -p benchmarks/results
	python benchmarks/bench_summary.py

# Emit a sample telemetry bundle (metrics JSON + Chrome trace) from the
# quickstart example into benchmarks/results/; load the trace in
# chrome://tracing.
obs-demo:
	mkdir -p benchmarks/results
	PYTHONPATH=src python examples/quickstart.py \
		--metrics-out benchmarks/results/obs_metrics.json \
		--trace-out benchmarks/results/obs_trace.json

# Live-telemetry smoke test: run a pooled evaluate with --serve-metrics
# and scrape /metrics + /healthz mid-run, asserting per-worker series
# (worker="0"..) and sampler gauges are live while work is in flight.
# Exits 0 with a skip note on boxes without POSIX shared memory.
obs-live-demo:
	PYTHONPATH=src python benchmarks/obs_live_demo.py

# Train + evaluate a small world end to end and emit the full report
# bundle (JSON + self-contained HTML dashboard + merged pool metrics)
# into benchmarks/results/. Open run_report.html in a browser.
report-demo:
	mkdir -p benchmarks/results
	PYTHONPATH=src python benchmarks/report_demo.py \
		--out-dir benchmarks/results

# Drop all cached trained models so benches retrain from scratch.
clean-cache:
	rm -rf .repro_cache

examples:
	python examples/quickstart.py
	python examples/train_custom_kb.py
	python examples/tail_disambiguation.py
	python examples/embedding_compression.py
	python examples/downstream_relation_extraction.py
