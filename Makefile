# Convenience targets for the Bootleg reproduction.

.PHONY: install test bench bench-core bench-fresh examples clean-cache

install:
	pip install -e .

test:
	pytest tests/

test-report:
	pytest tests/ 2>&1 | tee test_output.txt

bench:
	pytest benchmarks/ --benchmark-only

bench-report:
	pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

# Core microbenchmarks (forward pass, annotator throughput, collation)
# with a JSON baseline for regression comparison.
bench-core:
	pytest benchmarks/bench_perf_core.py --benchmark-only \
		--benchmark-json=benchmarks/bench_core_baseline.json

# Drop all cached trained models so benches retrain from scratch.
clean-cache:
	rm -rf .repro_cache

examples:
	python examples/quickstart.py
	python examples/train_custom_kb.py
	python examples/tail_disambiguation.py
	python examples/embedding_compression.py
	python examples/downstream_relation_extraction.py
