"""Setuptools shim for environments without the wheel package.

All real project metadata lives in pyproject.toml; this file only exists
so that ``pip install -e .`` can use the legacy editable-install path in
offline environments that lack ``wheel``.
"""

from setuptools import setup

setup()
