"""Live-telemetry smoke test: scrape a pooled evaluate while it runs.

Builds a small synthetic world, trains a 2-epoch checkpoint, then runs
``repro evaluate --workers 4 --serve-metrics 0`` **as a subprocess**
and polls its HTTP endpoint from the outside — the point is proving the
telemetry plane answers while the run is still in flight:

- ``/metrics`` must serve Prometheus-format per-worker series
  (``parallel_pool_chunk_seconds{...worker="N"...}``) and sampler
  gauges (``process_resident_bytes``, ``store_resident_bytes``)
  while the evaluate process is still alive;
- ``/healthz`` must report the ``pool`` component with every worker
  alive and the ``store`` component ready, mid-run.

Exits 0 with a skip note on machines without POSIX shared memory (the
pool would degrade to serial and there would be nothing live to
scrape). This is the ``make obs-live-demo`` target, part of
``make check``.

Usage::

    PYTHONPATH=src python benchmarks/obs_live_demo.py
"""

from __future__ import annotations

import argparse
import json
import os
import re
import subprocess
import sys
import tempfile
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

from repro.cli import main as repro_main
from repro.parallel import shared_memory_available

_URL_PATTERN = re.compile(r"telemetry endpoint at (http://[^/\s]+)/metrics")
_WORKER_SERIES = re.compile(
    r'parallel_pool_chunk_seconds\{[^}]*worker="(\d+)"'
)


def _run(step: str, argv: list[str]) -> None:
    print(f"==> repro {' '.join(argv)}")
    code = repro_main(argv)
    if code != 0:
        raise SystemExit(f"step {step!r} failed with exit code {code}")


def _scrape(url: str) -> str | None:
    try:
        with urllib.request.urlopen(url, timeout=2.0) as response:
            return response.read().decode("utf-8")
    except urllib.error.HTTPError as error:
        # /healthz answers 503 with a full JSON body when unhealthy;
        # that is still a scrape worth inspecting.
        return error.read().decode("utf-8")
    except (urllib.error.URLError, OSError, TimeoutError):
        return None


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--entities", type=int, default=120)
    parser.add_argument("--pages", type=int, default=90)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--timeout", type=float, default=240.0)
    args = parser.parse_args(argv)

    if not shared_memory_available():
        print("obs-live-demo: skipped (POSIX shared memory unavailable; "
              "the pool would run serial with nothing live to scrape)")
        return 0

    with tempfile.TemporaryDirectory(prefix="repro-obs-live-") as tmp:
        world = str(Path(tmp) / "world.npz")
        corpus = str(Path(tmp) / "corpus.npz")
        model = str(Path(tmp) / "model.npz")
        _run("generate-world", [
            "generate-world", "--entities", str(args.entities),
            "--seed", "0", "--out", world,
        ])
        _run("generate-corpus", [
            "generate-corpus", "--world", world, "--pages", str(args.pages),
            "--seed", "0", "--weak-label", "--out", corpus,
        ])
        _run("train", [
            "train", "--world", world, "--corpus", corpus,
            "--epochs", "2", "--seed", "0", "--out", model,
        ])

        eval_argv = [
            sys.executable, "-m", "repro.cli", "evaluate",
            "--world", world, "--corpus", corpus, "--model", model,
            "--split", "val", "--workers", str(args.workers),
            "--batch-size", "4", "--store", "tiered",
            "--serve-metrics", "0", "--sample-interval", "0.2",
        ]
        env = dict(os.environ)
        env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
        print(f"==> {' '.join(eval_argv)}")
        process = subprocess.Popen(
            eval_argv, stderr=subprocess.PIPE, text=True, env=env
        )

        # The CLI prints the ephemeral endpoint URL on stderr at setup;
        # a reader thread keeps draining so the child never blocks on a
        # full pipe.
        stderr_lines: list[str] = []

        def _drain() -> None:
            assert process.stderr is not None
            for line in process.stderr:
                stderr_lines.append(line)

        reader = threading.Thread(target=_drain, daemon=True)
        reader.start()

        base_url: str | None = None
        saw_workers: set[str] = set()
        saw_process_gauge = False
        saw_store_gauge = False
        saw_pool_health = False
        deadline = time.monotonic() + args.timeout
        try:
            while time.monotonic() < deadline and process.poll() is None:
                if base_url is None:
                    for line in list(stderr_lines):
                        match = _URL_PATTERN.search(line)
                        if match:
                            base_url = match.group(1)
                            print(f"scraping {base_url}")
                            break
                    if base_url is None:
                        time.sleep(0.05)
                        continue
                metrics = _scrape(base_url + "/metrics")
                # Everything asserted below was observed while poll()
                # was None a moment ago — i.e. mid-run.
                if metrics is not None and process.poll() is None:
                    saw_workers.update(_WORKER_SERIES.findall(metrics))
                    saw_process_gauge = saw_process_gauge or (
                        "process_resident_bytes" in metrics
                    )
                    saw_store_gauge = saw_store_gauge or (
                        "store_resident_bytes" in metrics
                    )
                healthz = _scrape(base_url + "/healthz")
                if healthz is not None and process.poll() is None:
                    try:
                        report = json.loads(healthz)
                    except ValueError:
                        report = {}
                    pool = report.get("components", {}).get("pool")
                    if pool and pool.get("ok") and pool.get(
                        "workers_alive"
                    ) == args.workers:
                        saw_pool_health = True
                done = (
                    len(saw_workers) >= 1
                    and saw_process_gauge
                    and saw_store_gauge
                    and saw_pool_health
                )
                if done:
                    break
                time.sleep(0.05)
        finally:
            process.wait(timeout=args.timeout)
            reader.join(timeout=5.0)

        sys.stderr.write("".join(stderr_lines))
        if process.returncode != 0:
            print(f"obs-live-demo: evaluate exited {process.returncode}")
            return 1
        failures = []
        if not saw_workers:
            failures.append(
                "no parallel_pool_chunk_seconds{worker=...} series were "
                "served mid-run"
            )
        if not saw_process_gauge:
            failures.append("process_resident_bytes gauge never appeared")
        if not saw_store_gauge:
            failures.append("store_resident_bytes gauge never appeared")
        if not saw_pool_health:
            failures.append(
                "/healthz never reported the pool component with all "
                f"{args.workers} workers alive mid-run"
            )
        if failures:
            for failure in failures:
                print(f"obs-live-demo FAILED: {failure}")
            return 1
        print(
            "obs-live-demo OK: live per-worker series "
            f"(workers {sorted(saw_workers)}), sampler gauges, and pool "
            "health were all served mid-run"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
