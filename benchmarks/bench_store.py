"""Entity payload store gates: throughput, memory budget, correctness.

Three gates, all enforced (exit 1 on failure):

(a) **Warm gather throughput** — row gathers from the sharded mmap
    store with every shard attached (the full-span fast path) must stay
    within ``--max-ratio`` (default 1.3x) of the dense in-memory store
    on a synthetically inflated payload (default 1M entities x 64
    float32).
(b) **Memory budget** — the same 1M-entity payload served with a
    shard-level LRU budget must keep ``store.resident_bytes`` (sampled
    from the obs gauge after every gather) at or under the budget while
    still returning byte-correct rows; shard attach/detach churn must
    show up in the ``store.shard_attach``/``store.shard_detach``
    counters.
(c) **Byte-identical annotations** — the real annotator workload from
    ``bench_perf_core`` must produce byte-identical annotations with the
    dense and mmap backends.

Usage::

    PYTHONPATH=src python benchmarks/bench_store.py \
        --out benchmarks/results/BENCH_store.json

The JSON output uses the pytest-benchmark shape
(``{"benchmarks": [{"name", "stats": {"mean"}}]}``) so
``compare_to_baseline.py`` can consume it.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent))

from bench_perf_core import build_perf_setup, make_annotator  # noqa: E402

import repro.obs as obs  # noqa: E402
from repro.nn.tensor import compute_dtype  # noqa: E402
from repro.store import (  # noqa: E402
    DEFAULT_SHARD_ROWS,
    DensePayloadStore,
    ShardedMmapStore,
    ShardedStoreWriter,
    write_sharded_store,
)


def _measure(fn, repeat: int) -> float:
    """Best-of-``repeat`` wall time."""
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _write_synthetic_store(
    store_dir: Path, rows: int, dim: int, seed: int
) -> np.ndarray:
    """Stream a synthetic payload to disk; returns the dense copy."""
    rng = np.random.default_rng(seed)
    dense = np.empty((rows, dim), dtype=np.float32)
    writer = ShardedStoreWriter(store_dir, shard_rows=DEFAULT_SHARD_ROWS)
    for start in range(0, rows, DEFAULT_SHARD_ROWS):
        stop = min(start + DEFAULT_SHARD_ROWS, rows)
        chunk = rng.standard_normal((stop - start, dim)).astype(np.float32)
        dense[start:stop] = chunk
        writer.append("static", chunk)
    writer.finalize()
    return dense


def _gate_throughput(
    dense_store: DensePayloadStore,
    store_dir: Path,
    ids: np.ndarray,
    repeat: int,
    max_ratio: float,
    failures: list[str],
) -> tuple[float, float]:
    mmap_store = ShardedMmapStore.open(store_dir)
    mmap_store.warm()
    # Fault every page once so the timed passes measure gather cost,
    # not first-touch disk reads.
    warm_rows = mmap_store.gather(ids)
    if not np.array_equal(warm_rows, dense_store.gather(ids)):
        failures.append("mmap gather returned different rows than dense")
    dense_seconds = _measure(lambda: dense_store.gather(ids), repeat)
    mmap_seconds = _measure(lambda: mmap_store.gather(ids), repeat)
    ratio = mmap_seconds / dense_seconds
    print(
        f"gate (a) warm gather: dense {dense_seconds * 1e3:.2f}ms, "
        f"mmap {mmap_seconds * 1e3:.2f}ms, ratio {ratio:.2f}x "
        f"(max {max_ratio:.2f}x)"
    )
    if ratio > max_ratio:
        failures.append(
            f"warm mmap gather is {ratio:.2f}x dense, above the "
            f"{max_ratio:.2f}x gate"
        )
    mmap_store.close()
    return dense_seconds, mmap_seconds


def _gate_budget(
    dense: np.ndarray,
    store_dir: Path,
    budget_shards: int,
    batches: int,
    batch_size: int,
    seed: int,
    failures: list[str],
) -> None:
    rows, dim = dense.shape
    shard_bytes = DEFAULT_SHARD_ROWS * dim * dense.dtype.itemsize
    budget = budget_shards * shard_bytes
    payload_bytes = rows * dim * dense.dtype.itemsize
    num_shards = -(-rows // DEFAULT_SHARD_ROWS)
    obs.reset()
    obs.enable()
    store = ShardedMmapStore.open(store_dir, memory_budget_bytes=budget)
    rng = np.random.default_rng(seed)
    max_resident = 0.0
    correct = True
    for _ in range(batches):
        ids = rng.integers(0, rows, size=batch_size)
        out = store.gather(ids)
        correct = correct and np.array_equal(out, dense[ids])
        gauge = obs.metrics.gauge("store.resident_bytes").value
        max_resident = max(max_resident, float(gauge or 0.0))
    attaches = obs.metrics.counter("store.shard_attach").value
    detaches = obs.metrics.counter("store.shard_detach").value
    store.close()
    obs.disable()
    obs.reset()
    print(
        f"gate (b) budget: payload {payload_bytes / 2**20:.0f} MiB served "
        f"under {budget / 2**20:.0f} MiB; max store.resident_bytes "
        f"{max_resident / 2**20:.1f} MiB, {attaches} attaches, "
        f"{detaches} detaches"
    )
    if not correct:
        failures.append("budgeted mmap gather returned wrong rows")
    if max_resident > budget:
        failures.append(
            f"store.resident_bytes peaked at {max_resident / 2**20:.1f} MiB, "
            f"above the {budget / 2**20:.0f} MiB budget"
        )
    if max_resident <= 0:
        failures.append("store.resident_bytes gauge was never set")
    if num_shards > budget_shards and (attaches <= budget_shards or detaches <= 0):
        failures.append(
            "expected shard churn under budget "
            f"(attaches={attaches}, detaches={detaches})"
        )


def _gate_annotations(repeat: int, failures: list[str]) -> float:
    setup = build_perf_setup()
    model = setup["model32"]
    annotator = make_annotator(setup, model)
    texts = setup["texts"] * 4
    with compute_dtype(np.float32):
        dense_out = annotator.annotate_batch(texts)
        dense_seconds = _measure(lambda: annotator.annotate_batch(texts), repeat)
        with tempfile.TemporaryDirectory(prefix="repro-store-") as tmp:
            # Shard small enough that the tiny model's payload actually
            # splits into several windows.
            write_sharded_store(
                tmp, model.embedder.payload_planes(), shard_rows=64
            )
            model.embedder.attach_payload_store(ShardedMmapStore.open(tmp))
            mmap_out = annotator.annotate_batch(texts)
            same = [
                [dataclasses.asdict(m) for m in doc] for doc in dense_out
            ] == [[dataclasses.asdict(m) for m in doc] for doc in mmap_out]
            model.embedder.invalidate_static_cache()
    print(f"gate (c) annotations dense vs mmap: {'identical' if same else 'DIVERGED'}")
    if not same:
        failures.append("annotations diverged between dense and mmap backends")
    return dense_seconds


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", type=Path, default=None,
                        help="write pytest-benchmark-shaped JSON here")
    parser.add_argument("--rows", type=int, default=1_000_000,
                        help="synthetic payload entities (default 1M)")
    parser.add_argument("--dim", type=int, default=64)
    parser.add_argument("--repeat", type=int, default=5)
    parser.add_argument("--batch", type=int, default=65_536,
                        help="ids per timed gather")
    parser.add_argument("--max-ratio", type=float, default=1.3,
                        help="warm mmap/dense gather ceiling (gate a)")
    parser.add_argument("--budget-shards", type=int, default=2,
                        help="resident budget in shards (gate b)")
    parser.add_argument("--budget-batches", type=int, default=8)
    parser.add_argument("--seed", type=int, default=17)
    parser.add_argument("--store-dir", type=Path, default=None,
                        help="reuse/keep the synthetic store here "
                             "(default: a temporary directory)")
    args = parser.parse_args(argv)

    failures: list[str] = []
    with tempfile.TemporaryDirectory(prefix="repro-store-bench-") as tmp:
        store_dir = args.store_dir or Path(tmp)
        print(
            f"writing synthetic payload: {args.rows} x {args.dim} float32 "
            f"({args.rows * args.dim * 4 / 2**20:.0f} MiB), "
            f"shard_rows {DEFAULT_SHARD_ROWS}"
        )
        dense = _write_synthetic_store(store_dir, args.rows, args.dim, args.seed)
        dense_store = DensePayloadStore(dense)
        ids = np.random.default_rng(args.seed + 1).integers(
            0, args.rows, size=args.batch
        )
        dense_seconds, mmap_seconds = _gate_throughput(
            dense_store, store_dir, ids, args.repeat, args.max_ratio, failures
        )
        _gate_budget(
            dense, store_dir, args.budget_shards, args.budget_batches,
            args.batch, args.seed + 2, failures,
        )
    annotate_seconds = _gate_annotations(max(2, args.repeat // 2), failures)

    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        report = {
            "benchmarks": [
                {"name": "store_gather_dense", "stats": {"mean": dense_seconds}},
                {"name": "store_gather_mmap_warm", "stats": {"mean": mmap_seconds}},
                {"name": "store_annotate_dense", "stats": {"mean": annotate_seconds}},
            ],
            "extra": {
                "rows": args.rows,
                "dim": args.dim,
                "batch": args.batch,
                "warm_ratio": mmap_seconds / dense_seconds,
                "budget_shards": args.budget_shards,
                "gates_failed": list(failures),
            },
        }
        args.out.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {args.out}")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
