"""Compare a pytest-benchmark JSON run against a committed baseline.

Usage::

    python benchmarks/compare_to_baseline.py CURRENT.json BASELINE.json \
        [--max-regression 0.20]

Benchmarks are matched by name; for each common benchmark the mean
ratio (current / baseline) is printed, and the script exits non-zero if
any benchmark regressed by more than ``--max-regression`` (default
20%). Benchmarks present in only one file are reported but never fail
the run, so adding or retiring benches doesn't break CI.

An entry may carry ``"higher_is_better": true`` (the BENCH_cascade.json
schema uses this for its speedup ratio); such entries regress when the
ratio *drops* below ``1 / (1 + max_regression)`` instead, and are
printed as bare ratios rather than milliseconds.

This replaces pointing ``--benchmark-json`` at the baseline file itself,
which silently rewrote the baseline on every routine run.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def load_means(path: Path) -> dict[str, float]:
    data = json.loads(path.read_text())
    return {
        bench["name"]: bench["stats"]["mean"]
        for bench in data.get("benchmarks", [])
    }


def load_directions(path: Path) -> dict[str, bool]:
    """name -> higher_is_better (absent means lower-is-better timing)."""
    data = json.loads(path.read_text())
    return {
        bench["name"]: bool(bench.get("higher_is_better", False))
        for bench in data.get("benchmarks", [])
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current", type=Path)
    parser.add_argument("baseline", type=Path)
    parser.add_argument(
        "--max-regression", type=float, default=0.20,
        help="fail when current mean exceeds baseline by this fraction",
    )
    parser.add_argument(
        "--missing-baseline-ok", action="store_true",
        help="warn instead of failing when the baseline file does not "
             "exist yet (new bench suites gate warn-only until their "
             "baseline is committed)",
    )
    args = parser.parse_args(argv)

    if args.missing_baseline_ok and not args.baseline.exists():
        print(
            f"warning: baseline {args.baseline} not committed yet; "
            "comparison skipped (run the *-baseline target on the "
            "reference box and commit the JSON to arm this gate)",
            file=sys.stderr,
        )
        for name in sorted(load_means(args.current)):
            print(f"{name}: no baseline (skipped)")
        return 0

    current = load_means(args.current)
    baseline = load_means(args.baseline)
    common = sorted(set(current) & set(baseline))
    if not common:
        # A brand-new bench suite has no baseline entries yet; that is a
        # warning, not a failure — the baseline catches up on its next
        # explicit refresh.
        print(
            "warning: no common benchmarks between the two runs; "
            "baseline predates this suite, nothing to compare",
            file=sys.stderr,
        )
        for name in sorted(current):
            print(f"{name}: not in baseline (skipped)")
        return 0

    directions = load_directions(args.current)
    failures = []
    width = max(len(name) for name in common)
    print(f"{'benchmark':<{width}}  {'baseline':>10}  {'current':>10}  ratio")
    for name in common:
        ratio = current[name] / baseline[name]
        higher_is_better = directions.get(name, False)
        regressed = (
            ratio < 1.0 / (1.0 + args.max_regression)
            if higher_is_better
            else ratio > 1.0 + args.max_regression
        )
        flag = ""
        if regressed:
            failures.append((name, ratio))
            flag = "  REGRESSION"
        if higher_is_better:
            print(
                f"{name:<{width}}  {baseline[name]:>9.2f}x  "
                f"{current[name]:>9.2f}x  {ratio:5.2f}x{flag}"
            )
        else:
            print(
                f"{name:<{width}}  {baseline[name] * 1e3:>8.2f}ms  "
                f"{current[name] * 1e3:>8.2f}ms  {ratio:5.2f}x{flag}"
            )
    for name in sorted(set(current) - set(baseline)):
        print(f"{name}: not in baseline (skipped)")
    for name in sorted(set(baseline) - set(current)):
        print(f"{name}: missing from current run (skipped)")

    if failures:
        print(
            f"\nFAIL: {len(failures)} benchmark(s) regressed more than "
            f"{args.max_regression:.0%}:",
            file=sys.stderr,
        )
        for name, ratio in failures:
            print(f"  {name}: {ratio:.2f}x baseline", file=sys.stderr)
        return 1
    print(f"\nOK: no benchmark regressed more than {args.max_regression:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
