"""Figure 1 (right) — F1 vs number of times an entity was seen in training.

Paper shape: the baseline's curve collapses at low counts while Bootleg
stays high; both converge for frequently seen entities.
"""

from conftest import run_once

from repro.experiments import figure1_series, render_figure1


def test_figure1(benchmark, wiki_ws, emit):
    series = run_once(benchmark, lambda: figure1_series(wiki_ws))
    emit("figure1", render_figure1(series))

    populated = [row for row in series if row[3] >= 10]
    assert len(populated) >= 3, "need populated occurrence bins"
    # Bootleg dominates the low-occurrence bins.
    low_bins = populated[:3]
    for label, base_f1, boot_f1, _ in low_bins:
        assert boot_f1 > base_f1, f"bootleg should win bin {label}"
    # The baseline's worst low bin is far below its best high bin
    # (the collapse), while bootleg's curve is much flatter.
    base_curve = [row[1] for row in populated]
    boot_curve = [row[2] for row in populated]
    assert max(base_curve) - min(base_curve) > max(boot_curve) - min(boot_curve)
