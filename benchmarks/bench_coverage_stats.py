"""Section 2/5 coverage statistics.

Paper claims reproduced in shape:

- affordance patterns cover the large majority of examples, KG relation
  patterns a meaningful minority, consistency the smallest share
  (84% / 27% / 8% in the paper's footnote);
- most mentions have type signals, a minority relation signals
  (97% / 27%);
- tail entities overwhelmingly carry non-tail types and relations
  (88% / 90%, Appendix D.1) — the "distinct tails" property;
- weak labeling grows the labeled-mention count well above 1x (1.7x in
  the paper).
"""

import numpy as np
from conftest import run_once

from repro.eval.patterns import (
    PatternSlicer,
    mine_affordance_keywords,
    slice_coverage,
)
from repro.utils.tables import format_table


def compute_stats(ws):
    kb, corpus = ws.world.kb, ws.corpus
    keywords = mine_affordance_keywords(corpus, kb)
    slicer = PatternSlicer(kb, ws.world.kg, keywords)
    membership = slicer.build_membership(corpus.sentences("val"))
    coverage = slice_coverage(membership, corpus.num_mentions("val"))

    total, with_type, with_relation = 0, 0, 0
    for sentence in corpus.sentences("train"):
        for mention in sentence.mentions:
            entity = kb.entity(mention.gold_entity_id)
            total += 1
            with_type += bool(entity.type_ids)
            with_relation += bool(entity.relation_ids)

    # Distinct tails: tail entities with non-tail types / relations.
    counts = ws.counts
    type_pop = np.zeros(kb.num_types)
    rel_pop = np.zeros(kb.num_relations)
    for sentence in corpus.sentences("train"):
        for mention in sentence.mentions:
            entity = kb.entity(mention.gold_entity_id)
            for t in entity.type_ids:
                type_pop[t] += 1
            for r in entity.relation_ids:
                rel_pop[r] += 1
    tail_types = {t for t in range(kb.num_types) if type_pop[t] <= 10}
    tail_rels = {r for r in range(kb.num_relations) if rel_pop[r] <= 10}
    tail_ids = counts.bucket_ids("tail")
    typed_tail = [e for e in tail_ids if kb.entity(int(e)).type_ids]
    rel_tail = [e for e in tail_ids if kb.entity(int(e)).relation_ids]
    non_tail_type = sum(
        1
        for e in typed_tail
        if any(t not in tail_types for t in kb.entity(int(e)).type_ids)
    )
    non_tail_rel = sum(
        1
        for e in rel_tail
        if any(r not in tail_rels for r in kb.entity(int(e)).relation_ids)
    )
    return {
        "coverage": coverage,
        "type_signal": with_type / total,
        "relation_signal": with_relation / total,
        "tail_with_nontail_type": non_tail_type / max(1, len(typed_tail)),
        "tail_with_nontail_relation": non_tail_rel / max(1, len(rel_tail)),
        "wl_growth": ws.weak_label_report.growth_factor,
    }


def test_coverage_stats(benchmark, wiki_ws, emit):
    stats = run_once(benchmark, lambda: compute_stats(wiki_ws))
    coverage = stats["coverage"]
    body = [
        ["affordance slice coverage", 100 * coverage["affordance"]],
        ["kg-relation slice coverage", 100 * coverage["kg_relation"]],
        ["consistency slice coverage", 100 * coverage["consistency"]],
        ["entity (no-signal) slice coverage", 100 * coverage["entity"]],
        ["mentions with type signal", 100 * stats["type_signal"]],
        ["mentions with relation signal", 100 * stats["relation_signal"]],
        ["tail entities with non-tail type", 100 * stats["tail_with_nontail_type"]],
        ["tail entities with non-tail relation", 100 * stats["tail_with_nontail_relation"]],
        ["weak-label mention growth (x100)", 100 * stats["wl_growth"]],
    ]
    emit(
        "coverage_stats",
        format_table(["Statistic", "%"], body, title="Section 2/5 coverage statistics"),
    )

    assert coverage["affordance"] > coverage["kg_relation"] > coverage["consistency"]
    assert stats["type_signal"] > 0.9
    assert 0.2 < stats["relation_signal"] <= 1.0
    assert stats["tail_with_nontail_type"] > 0.7
    assert stats["tail_with_nontail_relation"] > 0.7
    assert stats["wl_growth"] > 1.1
