"""End-to-end run-report demo: train, evaluate, export, self-diff.

Drives the ``repro`` CLI in-process on a small synthetic world and
leaves the full observability bundle in ``--out-dir``:

- ``train_report.json``  — training manifest + per-epoch summaries
- ``run_report.json``    — slice-aware evaluation report (diffable)
- ``run_report.html``    — self-contained dashboard
- ``run_metrics.json``   — merged metrics (including per-worker
  ``parallel.pool.chunk_seconds{worker=i}`` when a pool was used)
- ``run_trace.json``     — one Chrome trace across owner + workers

Finishes by diffing the evaluation report against itself with
``--fail-on-regression``, which must exit 0 — the same invocation CI
would run against a stored baseline.

Usage::

    PYTHONPATH=src python benchmarks/report_demo.py \
        --out-dir benchmarks/results
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
from pathlib import Path

from repro.cli import main as repro_main
from repro.parallel import shared_memory_available


def _run(step: str, argv: list[str]) -> None:
    print(f"==> repro {' '.join(argv)}")
    code = repro_main(argv)
    if code != 0:
        raise SystemExit(f"step {step!r} failed with exit code {code}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out-dir", type=Path,
                        default=Path("benchmarks/results"))
    parser.add_argument("--entities", type=int, default=120)
    parser.add_argument("--pages", type=int, default=30)
    parser.add_argument("--epochs", type=int, default=2)
    parser.add_argument("--workers", type=int, default=None,
                        help="evaluation pool size (default: 2 when shared "
                             "memory and >= 2 cores are available, else 1)")
    args = parser.parse_args(argv)

    out = args.out_dir
    out.mkdir(parents=True, exist_ok=True)
    workers = args.workers
    if workers is None:
        cores = len(os.sched_getaffinity(0))
        workers = 2 if shared_memory_available() and cores >= 2 else 1

    with tempfile.TemporaryDirectory(prefix="repro-report-demo-") as tmp:
        world = str(Path(tmp) / "world.npz")
        corpus = str(Path(tmp) / "corpus.npz")
        model = str(Path(tmp) / "model.npz")
        _run("generate-world", [
            "generate-world", "--entities", str(args.entities),
            "--seed", "0", "--out", world,
        ])
        _run("generate-corpus", [
            "generate-corpus", "--world", world, "--pages", str(args.pages),
            "--seed", "0", "--weak-label", "--out", corpus,
        ])
        _run("train", [
            "train", "--world", world, "--corpus", corpus,
            "--epochs", str(args.epochs), "--seed", "0", "--out", model,
            "--report-out", str(out / "train_report.json"),
        ])
        _run("evaluate", [
            "evaluate", "--world", world, "--corpus", corpus,
            "--model", model, "--split", "val",
            "--workers", str(workers),
            "--metrics-out", str(out / "run_metrics.json"),
            "--trace-out", str(out / "run_trace.json"),
            "--report-out", str(out / "run_report.json"),
            "--report-html", str(out / "run_report.html"),
        ])
        _run("report-diff", [
            "report", "diff",
            str(out / "run_report.json"), str(out / "run_report.json"),
            "--fail-on-regression",
        ])
    print(f"report bundle written to {out}/")
    return 0


if __name__ == "__main__":
    sys.exit(main())
