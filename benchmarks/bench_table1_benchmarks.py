"""Table 1 — P/R/F1 on the KORE50/RSS500/AIDA-like benchmark suites.

Paper shape: Bootleg meets or exceeds the prior state of the art on all
three benchmarks. Our prior-SotA stand-ins are the popularity prior and
the NED-Base biencoder; the AIDA-like suite fine-tunes the neural
models on its own training split first.
"""

from conftest import run_once

from repro.experiments import render_table1, table1_rows


def test_table1(benchmark, wiki_ws, benchmark_ws, emit):
    rows = run_once(
        benchmark, lambda: table1_rows(wiki_ws, benchmark_workspace=benchmark_ws)
    )
    emit("table1", render_table1(rows))

    by_suite: dict[str, dict[str, float]] = {}
    for row in rows:
        by_suite.setdefault(row.suite, {})[row.model] = row.prf.f1
    assert len(by_suite) == 3
    for suite, models in by_suite.items():
        assert models["bootleg"] >= models["ned_base"] - 0.02, suite
        assert models["bootleg"] > models["prior (popularity)"], suite
        # The benchmark model (B.2 extras) must also beat the baselines.
        assert models["bootleg (benchmark model)"] > models["ned_base"], suite
