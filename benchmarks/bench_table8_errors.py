"""Table 8 — Bootleg's four error buckets.

Paper shape: the granularity, numerical, multi-hop, and exact-match
buckets are all non-trivial; among mentions the baseline gets right but
Bootleg gets wrong, a substantial fraction are exact title matches
(28% in the paper) — the cost of regularizing entity memorization away.
"""

from conftest import run_once

from repro.experiments import table8_report
from repro.experiments.tables import render_table8


def test_table8(benchmark, wiki_ws, emit):
    report, exact = run_once(benchmark, lambda: table8_report(wiki_ws))
    emit("table8", render_table8(report, exact))

    assert report.total_errors > 20
    # Numerical and exact-match buckets must be clearly populated; the
    # granularity/multi-hop buckets depend on rarer structures and only
    # need to exist.
    assert report.fraction("numerical") > 0.02
    assert report.fraction("exact_match") > 0.02
    populated = sum(
        1 for bucket in report.buckets.values() if len(bucket) > 0
    )
    assert populated >= 3
