"""Table 10 — model sizes (embedding vs network MB).

Paper shape: the entity-embedding table dominates model size for
NED-Base / Bootleg / Ent-only (5.2 GB vs a 39 MB network at paper
scale), while the Type-only and KG-only models are orders of magnitude
smaller — the "1% of the space" claim of the introduction.
"""

from conftest import run_once

from repro.experiments import render_table10, table10_rows


def test_table10(benchmark, wiki_ws, emit):
    rows = run_once(benchmark, lambda: table10_rows(wiki_ws))
    emit("table10", render_table10(rows))

    # Entity tables dominate the entity-bearing models.
    for name in ("bootleg", "ent_only", "ned_base"):
        assert rows[name]["embedding_mb"] > 0
    # Type-only / KG-only embeddings are far smaller than entity tables.
    assert rows["type_only"]["embedding_mb"] < 0.5 * rows["bootleg"]["embedding_mb"]
    assert rows["kg_only"]["embedding_mb"] < 0.5 * rows["bootleg"]["embedding_mb"]
    # Bootleg's embeddings exceed NED-Base's (extra type/relation tables
    # on top of the same-size entity table).
    assert rows["bootleg"]["total_mb"] > rows["ned_base"]["embedding_mb"]
