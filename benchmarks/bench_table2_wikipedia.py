"""Table 2 — Wikipedia validation F1 by popularity bucket.

Paper shape: Bootleg beats NED-Base modestly on All (~5 points), hugely
on Tail (~41) and Unseen (~50); Type-only and KG-only beat Ent-only by
large margins on tail/unseen; Ent-only and NED-Base collapse on unseen.
"""

from conftest import run_once

from repro.experiments import render_table2, table2_rows


def test_table2(benchmark, wiki_ws, emit):
    rows = run_once(benchmark, lambda: table2_rows(wiki_ws))
    emit("table2", render_table2(rows))

    bootleg, ned = rows["bootleg"], rows["ned_base"]
    ent, typ, kg = rows["ent_only"], rows["type_only"], rows["kg_only"]
    # Headline: Bootleg >> NED-Base on the tail and unseen slices.
    assert bootleg["tail"] > ned["tail"] + 15
    assert bootleg["unseen"] > ned["unseen"] + 15
    # The gap on All Entities is comparatively small.
    assert bootleg["all"] > ned["all"]
    # Structural-signal models generalize; the entity-only model does not.
    assert typ["unseen"] > ent["unseen"] + 15
    assert kg["unseen"] > ent["unseen"] + 10
    # Full Bootleg is the best (or tied-best) model overall.
    assert bootleg["all"] >= max(ent["all"], kg["all"]) - 1e-9
