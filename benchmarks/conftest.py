"""Shared fixtures for the reproduction benchmarks.

Heavy artifacts (worlds, corpora, trained models) are built once per
session by the :mod:`repro.experiments` layer and cached on disk under
``.repro_cache`` (override with the ``REPRO_CACHE_DIR`` environment
variable), so repeated benchmark runs are fast. Each benchmark measures
the *report generation* step with ``benchmark.pedantic(rounds=1)`` and
writes its rendered table to ``benchmarks/results/``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments import micro_workspace, wiki_workspace
from repro.experiments.artifacts import Workspace, benchmark_workspace_config

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def wiki_ws():
    """The "full Wikipedia" analogue workspace (Table 2 scale)."""
    return wiki_workspace(seed=0)


@pytest.fixture(scope="session")
def micro_ws():
    """The "Wikipedia subset" analogue (regularization ablations)."""
    return micro_workspace(seed=0, weak_label=True)


@pytest.fixture(scope="session")
def benchmark_ws():
    """The benchmark-model workspace of Appendix B.2 (96/2/2 split,
    co-occurrence KG, page graph)."""
    return Workspace(benchmark_workspace_config(seed=0))


@pytest.fixture(scope="session")
def micro_nowl_ws():
    """Micro workspace without weak labeling (Table 11)."""
    return micro_workspace(seed=0, weak_label=False)


@pytest.fixture(scope="session")
def emit():
    """Write a rendered table to benchmarks/results/<name>.txt and echo it."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)

    def _emit(name: str, text: str) -> None:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[written to {path}]")

    return _emit


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
