"""Architecture ablations beyond the paper's own (DESIGN.md §5).

Design choices exercised: the KG2Ent skip connection and learned
self-loop weight, ensemble max-scoring vs scoring the final branch only,
the mention-type-prediction auxiliary task, and the mention positional
encoding. Each variant trains on the micro workspace; the bench reports
All/Tail/Unseen F1 so regressions from removing a component are visible.
"""

from conftest import run_once

from repro.core import BootlegConfig
from repro.eval import f1_by_bucket
from repro.experiments import ModelSpec
from repro.utils.tables import format_table

VARIANTS = {
    "full": BootlegConfig(num_candidates=6),
    "no_kg_skip": BootlegConfig(num_candidates=6, kg_use_skip=False),
    "fixed_self_weight": BootlegConfig(num_candidates=6, kg_learn_self_weight=False),
    "no_ensemble_score": BootlegConfig(num_candidates=6, use_ensemble_scoring=False),
    "no_type_prediction": BootlegConfig(num_candidates=6, use_type_prediction=False),
    "no_position_encoding": BootlegConfig(num_candidates=6, use_position_encoding=False),
}


def run_variants(ws):
    rows = {}
    for name, config in VARIANTS.items():
        spec = ModelSpec(f"arch_{name}", bootleg_config=config)
        predictions = ws.predictions(spec, "val")
        rows[name] = f1_by_bucket(predictions, ws.counts)
    return rows


def test_architecture_ablation(benchmark, micro_ws, emit):
    rows = run_once(benchmark, lambda: run_variants(micro_ws))
    body = [
        [name, values["all"], values["tail"], values["unseen"]]
        for name, values in rows.items()
    ]
    emit(
        "ablation_architecture",
        format_table(
            ["Variant", "All", "Tail", "Unseen"],
            body,
            title="Architecture ablation (micro workspace)",
        ),
    )

    full = rows["full"]
    # Every ablated variant must remain a working model...
    for name, values in rows.items():
        assert values["all"] > 40, name
    # ...and the full model should be at least competitive overall.
    best_all = max(values["all"] for values in rows.values())
    assert full["all"] >= best_all - 5
