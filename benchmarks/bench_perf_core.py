"""Microbenchmarks of the core computational paths.

Unlike the table benches (which time whole-table generation once),
these are classic pytest-benchmark timings of the hot loops: the model
forward pass, forward+backward, KG sub-matrix extraction, candidate
lookup, and sentence encoding. They catch performance regressions in
the autograd substrate and the data pipeline.
"""

import numpy as np
import pytest

from repro.core import BootlegAnnotator, BootlegConfig, BootlegModel
from repro.corpus import (
    CorpusConfig,
    EntityCounts,
    NedDataset,
    build_vocabulary,
    detokenize,
    generate_corpus,
)
from repro.kb import WorldConfig, generate_world
from repro.nn.tensor import compute_dtype, no_grad


def build_perf_setup(
    num_entities: int = 300,
    num_pages: int = 60,
    seed: int = 31,
    batch_size: int = 32,
    num_texts: int = 16,
) -> dict:
    """World + corpus + float64/float32 model pair + one collated batch.

    Shared by the benchmarks here and by the observability overhead
    guard in ``tests/test_obs.py``, so both measure the same workload.
    """
    world = generate_world(WorldConfig(num_entities=num_entities, seed=seed))
    corpus = generate_corpus(world, CorpusConfig(num_pages=num_pages, seed=seed))
    vocab = build_vocabulary(corpus)
    counts = EntityCounts.from_corpus(corpus, world.num_entities)
    dataset = NedDataset(
        corpus, "train", vocab, world.candidate_map, 6, kgs=[world.kg]
    )
    model = BootlegModel(
        BootlegConfig(num_candidates=6, dropout=0.0),
        world.kb,
        vocab,
        entity_counts=counts.counts,
    )
    model.eval()
    # Same weights cast to float32 for the fast-path benches.
    model32 = BootlegModel(
        BootlegConfig(num_candidates=6, dropout=0.0),
        world.kb,
        vocab,
        entity_counts=counts.counts,
    )
    model32.load_state_dict(model.state_dict())
    model32.half_precision()
    model32.eval()
    batch = dataset.collate(dataset.encoded[:batch_size])
    texts = [
        detokenize(list(s.tokens)) for s in corpus.sentences("test")[:num_texts]
    ]
    return {
        "world": world,
        "corpus": corpus,
        "vocab": vocab,
        "dataset": dataset,
        "model": model,
        "model32": model32,
        "batch": batch,
        "texts": texts,
    }


@pytest.fixture(scope="module")
def perf_setup():
    return build_perf_setup()


def make_annotator(perf_setup, model):
    world = perf_setup["world"]
    return BootlegAnnotator(
        model,
        perf_setup["vocab"],
        world.candidate_map,
        world.kb,
        kgs=[world.kg],
        num_candidates=6,
    )


def test_forward_pass(benchmark, perf_setup):
    """Baseline: float64 forward without the static payload cache."""
    model, batch = perf_setup["model"], perf_setup["batch"]
    model.payload_cache_enabled = False

    def forward():
        with no_grad():
            return model(batch)

    try:
        benchmark(forward)
    finally:
        model.payload_cache_enabled = True


def test_forward_pass_f32_cached(benchmark, perf_setup):
    """Fast path: float32 compute with the cached static entity payload."""
    model32, batch = perf_setup["model32"], perf_setup["batch"]

    def forward():
        with no_grad(), compute_dtype(np.float32):
            return model32(batch)

    benchmark(forward)


def test_annotate_sequential_f64(benchmark, perf_setup):
    """Baseline annotator throughput: one float64 model call per text."""
    annotator = make_annotator(perf_setup, perf_setup["model"])
    texts = perf_setup["texts"]
    perf_setup["model"].payload_cache_enabled = False

    try:
        benchmark(lambda: [annotator.annotate(text) for text in texts])
    finally:
        perf_setup["model"].payload_cache_enabled = True


def test_annotate_batched_f32(benchmark, perf_setup):
    """Fast-path annotator throughput: packed batches, float32, cache."""
    annotator = make_annotator(perf_setup, perf_setup["model32"])
    texts = perf_setup["texts"]

    def run():
        with compute_dtype(np.float32):
            return annotator.annotate_batch(texts)

    benchmark(run)


def test_forward_backward(benchmark, perf_setup):
    model, batch = perf_setup["model"], perf_setup["batch"]
    model.train()

    def step():
        model.zero_grad()
        output = model(batch)
        model.loss(batch, output).backward()

    benchmark(step)
    model.eval()


def test_kg_submatrix_extraction(benchmark, perf_setup):
    kg = perf_setup["world"].kg
    rng = np.random.default_rng(0)
    ids = rng.integers(-1, 300, size=24)
    benchmark(lambda: kg.candidate_adjacency(ids, use_weights=True))


def test_candidate_lookup(benchmark, perf_setup):
    cmap = perf_setup["world"].candidate_map
    aliases = [e.mention_stem for e in perf_setup["world"].kb.entities()][:100]

    def lookup():
        for alias in aliases:
            cmap.get_candidates(alias, 6)

    benchmark(lookup)


def test_sentence_encoding(benchmark, perf_setup):
    dataset = perf_setup["dataset"]
    sentences = perf_setup["corpus"].sentences("train")[:50]
    benchmark(lambda: [dataset._encode(s) for s in sentences])


def test_batch_collation(benchmark, perf_setup):
    dataset = perf_setup["dataset"]
    items = dataset.encoded[:64]
    benchmark(lambda: dataset.collate(items))
