"""Table 7 — Overall/Tail F1 per reasoning-pattern slice.

Paper shape: Bootleg provides a lift over NED-Base and Ent-only on every
slice (the paper quotes tail lifts of 18/56/62/45 F1 on the
entity/consistency/KG/affordance slices); the KG-only model is strong on
the KG-relation slice; the affordance slice has by far the largest
coverage, KG relation next, consistency smallest.
"""

from conftest import run_once

from repro.experiments import render_table7, table7_rows


def test_table7(benchmark, wiki_ws, emit):
    (results, coverage) = run_once(benchmark, lambda: table7_rows(wiki_ws))
    emit("table7", render_table7(results, coverage))

    # Coverage ordering (Section 2): affordance >> KG relation > consistency.
    assert coverage["affordance"] > coverage["kg_relation"] > coverage["consistency"]

    for slice_name in ("consistency", "kg_relation", "affordance"):
        boot_overall, boot_tail = results["bootleg"][slice_name]
        base_overall, base_tail = results["ned_base"][slice_name]
        assert boot_overall > base_overall, slice_name
        assert boot_tail > base_tail + 10, slice_name
    # KG-only holds its own on the KG-relation slice relative to its own
    # performance elsewhere.
    kg_on_kg = results["kg_only"]["kg_relation"][0]
    kg_on_afford = results["kg_only"]["affordance"][0]
    assert kg_on_kg >= kg_on_afford - 5
