"""Table 6 — unseen-entity F1 vs the entity regularization scheme p(e).

Paper shape: unseen F1 rises monotonically with fixed masking
(0% < 20% < 50% < 80%), the inverse-popularity scheme is best, and the
popularity-proportional scheme lands near the weak fixed settings
(InvPop beats Pop by a wide margin).
"""

from conftest import run_once

from repro.experiments import render_table6, table6_rows


def test_table6(benchmark, micro_ws, emit):
    rows = run_once(benchmark, lambda: table6_rows(micro_ws))
    emit("table6", render_table6(rows))

    # Robust orderings at our scale (seed-averaged, pooled val+test; the
    # paper's per-scheme gaps are a few F1 on 2,810 unseen mentions — our
    # slice holds ~70, so only the large-margin claims are asserted):
    # (1) masking the entity embedding helps the unseen slice vs never
    #     masking,
    assert max(rows["20%"], rows["50%"], rows["80%"]) > rows["0%"]
    # (2) the inverse-popularity scheme beats no masking,
    assert rows["InvPop"] > rows["0%"]
    # (3) and beats regularizing popular entities *more* (Pop).
    assert rows["InvPop"] >= rows["Pop"]
