"""Extension: multi-hop KG reasoning (the paper's stated limitation).

Section 5's error analysis identifies a multi-hop bucket — sentences
whose gold entities are only connected through a shared out-of-sentence
neighbor — and notes "this type of error represents a fundamental
limitation of Bootleg as we do not encode any form of multi-hop
reasoning". This bench implements the fix the paper gestures at: a
second KG2Ent adjacency weighting candidate pairs by their shared-
neighbor count (``TwoHopKnowledgeGraph``), and measures its effect on
the multi-hop error bucket against the single-hop Bootleg.
"""

import dataclasses

from conftest import run_once

from repro.core import BootlegConfig
from repro.eval import f1_by_bucket
from repro.eval.errors import classify_errors
from repro.experiments import ModelSpec, Workspace, wiki_workspace_config
from repro.experiments.artifacts import standard_model_specs
from repro.utils.tables import format_table


def run_multihop(wiki_ws):
    # Same world/corpus seeds as the wiki workspace, plus the two-hop
    # adjacency as a second KG2Ent input.
    config = dataclasses.replace(
        wiki_workspace_config(seed=0), name="wiki_twohop", use_two_hop_kg=True
    )
    two_hop_ws = Workspace(config)
    spec = ModelSpec(
        "bootleg_twohop",
        bootleg_config=BootlegConfig(
            num_candidates=config.num_candidates, num_kg_modules=2
        ),
    )
    sentences = {s.sentence_id: s for s in two_hop_ws.corpus.sentences("val")}

    def stats(workspace, model_spec):
        predictions = workspace.predictions(model_spec, "val")
        buckets = f1_by_bucket(predictions, workspace.counts)
        report = classify_errors(
            predictions, workspace.world.kb, workspace.world.kg, sentences
        )
        return buckets, report

    base_spec = standard_model_specs(config.num_candidates)["bootleg"]
    base_buckets, base_report = stats(wiki_ws, base_spec)
    two_buckets, two_report = stats(two_hop_ws, spec)
    return {
        "single_hop": (base_buckets, base_report),
        "two_hop": (two_buckets, two_report),
    }


def test_multihop_extension(benchmark, wiki_ws, emit):
    results = run_once(benchmark, lambda: run_multihop(wiki_ws))
    rows = []
    for name, (buckets, report) in results.items():
        rows.append(
            [
                name,
                buckets["all"],
                buckets["tail"],
                buckets["unseen"],
                len(report.buckets["multi_hop"]),
                report.total_errors,
            ]
        )
    emit(
        "extension_multihop",
        format_table(
            ["Model", "All", "Tail", "Unseen", "Multi-hop errs", "Total errs"],
            rows,
            title="Extension — two-hop KG2Ent vs single-hop Bootleg",
        ),
    )

    single_buckets, single_report = results["single_hop"]
    two_buckets, two_report = results["two_hop"]
    # The extension must not regress overall quality...
    assert two_buckets["all"] > single_buckets["all"] - 4
    # ...and must not *increase* multi-hop-bucket errors.
    assert len(two_report.buckets["multi_hop"]) <= len(
        single_report.buckets["multi_hop"]
    ) + 2
