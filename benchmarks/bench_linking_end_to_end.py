"""Extension: end-to-end entity linking (detection + disambiguation).

The paper evaluates entity *disambiguation* (gold mention spans given;
footnote 10) and uses alias-scan + NER boundary expansion to build its
benchmark pipeline. This bench runs that full pipeline — mention
detection over raw tokens, candidate lookup, Bootleg disambiguation —
and scores span+entity linking P/R/F1, where precision and recall
genuinely diverge (detection can fire on unlinked alias occurrences and
miss truncated mentions).
"""

from conftest import run_once

from repro.candgen import MentionDetector, evaluate_detection, evaluate_linking, link_sentences
from repro.experiments.artifacts import standard_model_specs
from repro.utils.tables import format_table


def run_linking(wiki_ws):
    sentences = wiki_ws.corpus.sentences("val")
    detector = MentionDetector(wiki_ws.world.candidate_map)
    detections = {s.sentence_id: detector.detect(s.tokens) for s in sentences}
    detection_prf = evaluate_detection(detections, sentences)
    specs = standard_model_specs(wiki_ws.config.num_candidates)
    rows = {}
    for name in ("ned_base", "bootleg"):
        model = wiki_ws.trained_model(specs[name])
        links = link_sentences(
            model,
            sentences,
            wiki_ws.vocab,
            wiki_ws.world.candidate_map,
            wiki_ws.config.num_candidates,
            kgs=wiki_ws.kgs,
            detector=detector,
        )
        rows[name] = evaluate_linking(links, sentences)
    return detection_prf, rows


def test_end_to_end_linking(benchmark, wiki_ws, emit):
    detection_prf, rows = run_once(benchmark, lambda: run_linking(wiki_ws))
    body = [["detection (spans only)", *detection_prf.as_row()]]
    for name, prf in rows.items():
        body.append([f"linking: {name}", *prf.as_row()])
    emit(
        "linking_end_to_end",
        format_table(
            ["Stage / model", "Precision", "Recall", "F1"],
            body,
            title="Extension — end-to-end entity linking on validation",
        ),
    )

    # Detection must recover nearly all gold spans (aliases are known).
    assert detection_prf.recall > 0.9
    # Linking: Bootleg clearly beats the text-only baseline end to end.
    assert rows["bootleg"].f1 > rows["ned_base"].f1 + 0.05
    # Precision and recall genuinely differ in the linking setting.
    assert abs(rows["bootleg"].precision - rows["bootleg"].recall) > 1e-6
