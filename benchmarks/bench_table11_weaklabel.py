"""Table 11 — weak labeling on vs off (micro dataset, anchor-count buckets).

Paper shape: weak labeling lifts unseen-entity F1 (+2.6 in the paper),
is roughly neutral on the tail, and can slightly hurt the torso; the
labeled-mention growth factor is well above 1x.
"""

from conftest import run_once

from repro.experiments import render_table11, table11_rows


def test_table11(benchmark, micro_ws, micro_nowl_ws, emit):
    rows = run_once(benchmark, lambda: table11_rows(micro_ws, micro_nowl_ws))
    growth = micro_ws.weak_label_report.growth_factor
    emit("table11", render_table11(rows, growth))

    with_wl = rows["bootleg_with_wl"]
    without = rows["bootleg_no_wl"]
    assert growth > 1.1
    # The paper's effect (+2.6 unseen, ~neutral tail, small torso dip) is
    # below our noise floor on ~45-mention slices, so the bench asserts
    # the robust parts: weak labels must not wreck any slice, and tail
    # quality is preserved.
    assert with_wl["tail"] > without["tail"] - 5
    assert with_wl["all"] > without["all"] - 5
    assert with_wl["unseen"] > without["unseen"] - 20
