"""Tables 3, 4, 12, 13 — TACRED-style relation extraction transfer.

Paper shape: adding frozen contextual Bootleg entity embeddings to a
text-only span classifier improves test F1 (the paper's +2.3 over
SpanBERT); the improvement concentrates on examples with more Bootleg
signal (Table 12 gap ratios > 1) and the baseline's error rate exceeds
the Bootleg model's on signal-present slices (Table 13 ratios > 1).
"""

from conftest import run_once

from repro.experiments import render_tacred, run_tacred_experiment


def test_tacred(benchmark, wiki_ws, emit):
    results = run_once(benchmark, lambda: run_tacred_experiment(wiki_ws))
    emit("table3_tacred", render_tacred(results))

    assert results.bootleg_f1 > results.baseline_f1
    # Table 13: on every signal-present slice the baseline errs at least
    # as often as the Bootleg-feature model.
    for signal, (count, ratio) in results.table13.items():
        if count >= 20:
            assert ratio >= 0.95, f"signal {signal}: ratio {ratio}"
