"""Table 9 — the full micro ablation grid.

Paper shape (micro dataset): NED-Base and Ent-only collapse on unseen
entities; Type-only and KG-only stay strong; among Bootleg
regularization variants the inverse-popularity power curve has the best
unseen F1, while mid fixed values are competitive on torso/all.
"""

from conftest import run_once

from repro.experiments import render_table9, table9_rows


def test_table9(benchmark, micro_ws, emit):
    rows = run_once(benchmark, lambda: table9_rows(micro_ws))
    emit("table9", render_table9(rows))

    assert rows["type_only"]["unseen"] > rows["ent_only"]["unseen"] + 10
    assert rows["kg_only"]["unseen"] > rows["ent_only"]["unseen"] + 5
    assert rows["ned_base"]["unseen"] < rows["type_only"]["unseen"]
    # Regularization grid (seed-averaged): the inverse-popularity family
    # is at or near the top of the grid on unseen entities, ahead of
    # no-masking and of popularity-proportional masking.
    grid_unseen = {
        name: values["unseen"]
        for name, values in rows.items()
        if name.startswith("bootleg_")
    }
    best = max(grid_unseen.values())
    inv_family_best = max(
        grid_unseen["bootleg_inv_pop_pow"],
        grid_unseen["bootleg_inv_pop_log"],
        grid_unseen["bootleg_inv_pop_lin"],
    )
    assert inv_family_best >= best - 5
    assert inv_family_best > grid_unseen["bootleg_fixed_0"]
    assert inv_family_best >= grid_unseen["bootleg_pop_pow"]
