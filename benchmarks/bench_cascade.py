"""Tiered-cascade gates: throughput, byte-identity, no slice regression.

Three gates over the heuristic→model inference cascade
(docs/CASCADE.md), on a head-heavy synthetic corpus (the perf world's
priors answer ~98% of mentions at tier 0, matching the paper's
observation that head mentions resolve by popularity alone):

(a) ``--min-speedup`` (default 2x) end-to-end annotation throughput of
    the cascade annotator over the full-model path;
(b) escalated-mention outputs byte-identical to a standalone full-model
    pass over exactly the escalated documents (the cascade batches
    escalated work the same way that pass would);
(c) ``repro report diff --fail-on-regression`` passes with the
    full-model evaluate report as the baseline — the cascade must not
    significantly regress any slice.

Also micro-asserts the mention-detector satellite: the longest-match
window is bounded by the candidate map's longest alias, so a scan of
unknown tokens probes once per position here (``max_alias_tokens == 1``
in the perf world) instead of ``max_span`` times.

Usage::

    PYTHONPATH=src python benchmarks/bench_cascade.py \
        --out benchmarks/results/BENCH_cascade.json

The JSON output uses the pytest-benchmark shape; the ``cascade_speedup``
entry carries ``higher_is_better`` so ``compare_to_baseline.py`` gates
it in the right direction.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent))

from bench_perf_core import build_perf_setup, make_annotator  # noqa: E402

from repro.cascade import (  # noqa: E402
    TIER_MODEL,
    CascadePolicy,
    Tier0Linker,
    cascade_predict,
)
from repro.cli import main as repro_main  # noqa: E402
from repro.core import BootlegAnnotator  # noqa: E402
from repro.core.trainer import predict  # noqa: E402
from repro.corpus import EntityCounts, NedDataset, detokenize  # noqa: E402
from repro.corpus.tokenizer import tokenize  # noqa: E402
from repro.nn.tensor import compute_dtype  # noqa: E402
from repro.obs.report import RunReport  # noqa: E402


def _measure(fn, repeat: int) -> tuple[float, object]:
    """Best-of-``repeat`` wall time plus the last result."""
    best = float("inf")
    result = None
    for _ in range(repeat):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


class _ProbeCountingMap:
    """Delegating candidate-map spy counting lookup probes."""

    def __init__(self, inner):
        self.inner = inner
        self.probes = 0

    def get_candidates(self, alias, k=None):
        self.probes += 1
        return self.inner.get_candidates(alias, k)

    def max_alias_tokens(self):
        return self.inner.max_alias_tokens()


def _assert_detector_bounded(world) -> None:
    from repro.candgen.detection import MentionDetector

    spy = _ProbeCountingMap(world.candidate_map)
    detector = MentionDetector(spy, max_span=3, expand_boundaries=False)
    unknown = [f"zz{i}" for i in range(64)]
    detector.detect(unknown)
    bound = world.candidate_map.max_alias_tokens() * len(unknown)
    if spy.probes > bound:
        raise AssertionError(
            f"detector probed {spy.probes} times; the alias-length bound "
            f"allows at most {bound}"
        )
    print(
        f"detector scan bounded: {spy.probes} probes over {len(unknown)} "
        f"tokens (max alias {world.candidate_map.max_alias_tokens()} "
        "token(s), configured window 3)"
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", type=Path, default=None,
                        help="write pytest-benchmark-shaped JSON here")
    parser.add_argument("--min-speedup", type=float, default=2.0)
    parser.add_argument("--repeat", type=int, default=3)
    parser.add_argument("--replicas", type=int, default=5,
                        help="how many times to replicate the base texts")
    parser.add_argument("--results-dir", type=Path,
                        default=Path("benchmarks/results"),
                        help="where the report-diff gate writes its reports")
    args = parser.parse_args(argv)

    print("building workload...")
    setup = build_perf_setup()
    world = setup["world"]
    corpus = setup["corpus"]
    model32 = setup["model32"]
    policy = CascadePolicy()
    full = make_annotator(setup, model32)
    cascade = BootlegAnnotator(
        model32, setup["vocab"], world.candidate_map, world.kb,
        kgs=[world.kg], num_candidates=6, cascade=policy,
    )
    base = [
        detokenize(list(s.tokens)) for s in corpus.sentences("test")
    ]
    base = [t for t in base if full.detect_mentions(tokenize(t))]
    texts = base * args.replicas
    print(f"{len(texts)} documents ({len(base)} unique), best of {args.repeat}")

    failures: list[str] = []
    _assert_detector_bounded(world)

    with compute_dtype(np.float32):
        full.annotate_batch(texts[:8])  # warm the payload cache
        full_seconds, full_out = _measure(
            lambda: full.annotate_batch(texts), args.repeat
        )
        cascade_seconds, cascade_out = _measure(
            lambda: cascade.annotate_batch(texts), args.repeat
        )

        # Gate (b): escalated mentions byte-identical to the full path
        # run over exactly the escalated documents.
        escalated_docs = [
            index
            for index, doc in enumerate(cascade_out)
            if any(m.tier == TIER_MODEL for m in doc)
        ]
        num_tier0 = sum(
            1 for doc in cascade_out for m in doc if m.tier != TIER_MODEL
        )
        num_escalated_mentions = sum(
            1 for doc in cascade_out for m in doc if m.tier == TIER_MODEL
        )
        print(
            f"tier-0 answered {num_tier0} annotation(s); "
            f"{num_escalated_mentions} escalated across "
            f"{len(escalated_docs)} document(s)"
        )
        if not escalated_docs:
            failures.append(
                "corpus produced zero escalations; the byte-identity gate "
                "needs at least one escalated document"
            )
        else:
            standalone = full.annotate_batch(
                [texts[i] for i in escalated_docs]
            )
            for doc_index, full_doc in zip(escalated_docs, standalone):
                by_span = {(m.start, m.end): m for m in full_doc}
                for mention in cascade_out[doc_index]:
                    if mention.tier != TIER_MODEL:
                        continue
                    twin = by_span[(mention.start, mention.end)]
                    if dataclasses.asdict(mention) != dataclasses.asdict(twin):
                        failures.append(
                            "escalated mention at document "
                            f"{doc_index} span ({mention.start}, "
                            f"{mention.end}) diverges from the standalone "
                            "full-model pass"
                        )
            if not any("escalated mention" in f for f in failures):
                print("escalated outputs: byte-identical to the full path")
        if len(full_out) != len(cascade_out):
            failures.append("document counts diverge between the two paths")

    # Gate (a): end-to-end throughput.
    speedup = full_seconds / cascade_seconds
    print(f"full   : {full_seconds:.3f}s ({len(texts) / full_seconds:.1f} docs/s)")
    print(f"cascade: {cascade_seconds:.3f}s ({len(texts) / cascade_seconds:.1f} docs/s)")
    print(f"speedup: {speedup:.2f}x")
    if speedup < args.min_speedup:
        failures.append(
            f"cascade speedup {speedup:.2f}x below the "
            f"{args.min_speedup:.1f}x floor"
        )

    # Gate (c): the cascade's evaluate report must not significantly
    # regress any slice against the full-model baseline report.
    args.results_dir.mkdir(parents=True, exist_ok=True)
    model = setup["model"]
    counts = EntityCounts.from_corpus(corpus, world.num_entities)
    val = NedDataset(
        corpus, "val", setup["vocab"], world.candidate_map, 6, kgs=[world.kg]
    )
    full_records = predict(model, val)
    cascade_records = cascade_predict(model, val, policy, kb=world.kb)
    full_path = args.results_dir / "cascade_gate_full.json"
    cascade_path = args.results_dir / "cascade_gate_cascade.json"
    RunReport.build(
        name="evaluate:val:full", records=full_records, counts=counts,
        config={"cascade": None},
    ).save(full_path)
    RunReport.build(
        name="evaluate:val:cascade", records=cascade_records, counts=counts,
        config={"cascade": dataclasses.asdict(policy)},
    ).save(cascade_path)
    diff_rc = repro_main([
        "report", "diff", str(full_path), str(cascade_path),
        "--fail-on-regression",
    ])
    if diff_rc != 0:
        failures.append(
            "report diff --fail-on-regression found a significant slice "
            "regression vs the full-model baseline"
        )
    else:
        print("report diff: no significant slice regression")

    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        tier0 = Tier0Linker(
            world.candidate_map, policy, kb=world.kb, num_candidates=6
        )
        surfaces = sorted(
            {m.surface for r in full_records for m in [r]}
        )
        answered = sum(1 for s in surfaces if tier0.resolve(s).answered)
        report = {
            "benchmarks": [
                {
                    "name": "annotate_batch_full",
                    "stats": {"mean": full_seconds},
                },
                {
                    "name": "annotate_batch_cascade",
                    "stats": {"mean": cascade_seconds},
                },
                {
                    "name": "cascade_speedup",
                    "stats": {"mean": speedup},
                    "higher_is_better": True,
                },
            ],
            "extra": {
                "documents": len(texts),
                "tier0_annotations": num_tier0,
                "escalated_mentions": num_escalated_mentions,
                "escalated_documents": len(escalated_docs),
                "policy": dataclasses.asdict(policy),
                "unique_surfaces_answered": [answered, len(surfaces)],
            },
        }
        args.out.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {args.out}")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
