"""Table 5 — Overton-style production task, relative F1 in four locales.

Paper shape: swapping Bootleg representations into the production system
yields relative quality >= 1.0 in every locale, with the tail slice
benefiting at least as much as the overall slice.
"""

from conftest import run_once

from repro.downstream import OvertonConfig, run_overton_simulation
from repro.utils.tables import format_table


def test_table5(benchmark, emit):
    results = run_once(
        benchmark,
        lambda: run_overton_simulation(OvertonConfig(epochs=14)),
    )
    body = [
        [r.locale, f"{r.relative_all:.2f}", f"{r.relative_tail:.2f}"]
        for r in results
    ]
    emit(
        "table5_overton",
        format_table(
            ["Locale", "Relative All", "Relative Tail"],
            body,
            title="Table 5 — relative F1 of the system with Bootleg features",
        ),
    )

    assert len(results) == 4
    for result in results:
        assert result.relative_all >= 0.97, result.locale
    # The tail lift should be visible in most locales.
    tail_wins = sum(1 for r in results if r.relative_tail >= 1.0)
    assert tail_wins >= 3
