"""Figure 3 — error vs entity-embedding compression ratio.

Paper shape: keeping only the top 5% of entity embeddings costs under
~1 F1 point overall (error curve near-flat down to 5%), and tail error
does not blow up (the paper even observes a small tail improvement).
"""

from conftest import run_once

from repro.experiments import figure3_series, render_figure3


def test_figure3(benchmark, wiki_ws, emit):
    rows = run_once(benchmark, lambda: figure3_series(wiki_ws))
    emit("figure3", render_figure3(rows))

    by_keep = {keep: errors for keep, errors, _ in rows}
    full = by_keep[100.0]
    five = by_keep[5.0]
    # Memory shrinks proportionally.
    mb = {keep: size for keep, _, size in rows}
    assert mb[5.0] < 0.06 * mb[100.0] + 1e-9
    # Near-flat overall error down to 5% kept (paper: -0.8 F1).
    assert five["all"] - full["all"] < 6.0
    # Tail error must not blow up.
    assert five["tail"] - full["tail"] < 8.0
