"""Annotator-pool throughput vs. the serial annotation path.

Times ``BootlegAnnotator.annotate_batch`` against
``AnnotatorPool.annotate_batch`` on the same replicated synthetic
workload (float32 fast path, static payload cache), asserts the two
paths return byte-identical annotations, and checks that the
shared-memory payload plane actually shares: the private (copied)
resident pages of the shm mapping in each worker must stay under 25%
of the payload size.

The >= ``--min-speedup`` floor is only enforced when the machine has at
least 4 usable cores — on smaller boxes the numbers are still printed
and recorded, but multiprocess speedup is physically unavailable, so
the run warns instead of failing.

Usage::

    PYTHONPATH=src python benchmarks/bench_parallel.py \
        --out benchmarks/results/BENCH_parallel.json

The JSON output uses the pytest-benchmark shape
(``{"benchmarks": [{"name", "stats": {"mean"}}]}``) so
``compare_to_baseline.py`` can consume it.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import re
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent))

from bench_perf_core import build_perf_setup, make_annotator  # noqa: E402

from repro.corpus.tokenizer import tokenize  # noqa: E402
from repro.nn.tensor import compute_dtype  # noqa: E402
from repro.parallel import AnnotatorPool, shared_memory_available  # noqa: E402

_SMAPS_HEADER = re.compile(r"^[0-9a-f]+-[0-9a-f]+\s")


def _measure(fn, repeat: int) -> tuple[float, object]:
    """Best-of-``repeat`` wall time plus the last result."""
    best = float("inf")
    result = None
    for _ in range(repeat):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _assert_identical(serial, parallel) -> None:
    if len(serial) != len(parallel):
        raise AssertionError(
            f"document count mismatch: {len(serial)} != {len(parallel)}"
        )
    for index, (doc_a, doc_b) in enumerate(zip(serial, parallel)):
        a = [dataclasses.asdict(m) for m in doc_a]
        b = [dataclasses.asdict(m) for m in doc_b]
        if a != b:
            raise AssertionError(f"annotations diverge at document {index}")


def _shm_private_bytes(pids: list[int], block_name: str) -> int:
    """Privately-resident bytes of the shm mapping across ``pids``.

    Parses ``/proc/<pid>/smaps``; a worker that truly shares the payload
    shows the block's pages as Shared_Clean, so Private_Clean +
    Private_Dirty stays near zero.
    """
    total_kb = 0
    for pid in pids:
        try:
            lines = Path(f"/proc/{pid}/smaps").read_text().splitlines()
        except OSError:
            continue
        in_block = False
        for line in lines:
            if _SMAPS_HEADER.match(line):
                in_block = block_name in line
                continue
            if in_block and line.startswith(("Private_Clean:", "Private_Dirty:")):
                total_kb += int(line.split()[1])
    return total_kb * 1024


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", type=Path, default=None,
                        help="write pytest-benchmark-shaped JSON here")
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--min-speedup", type=float, default=2.0)
    parser.add_argument("--repeat", type=int, default=3)
    parser.add_argument("--replicas", type=int, default=6,
                        help="how many times to replicate the base texts")
    args = parser.parse_args(argv)

    if not shared_memory_available():
        print("warning: POSIX shared memory unavailable; nothing to bench",
              file=sys.stderr)
        return 0

    cores = len(os.sched_getaffinity(0))
    print(f"building workload ({cores} usable cores)...")
    setup = build_perf_setup()
    model = setup["model32"]
    annotator = make_annotator(setup, model)
    base = [t for t in setup["texts"] if annotator.detect_mentions(tokenize(t))]
    texts = base * args.replicas
    print(f"{len(texts)} documents ({len(base)} unique), "
          f"{args.workers} workers, best of {args.repeat}")

    failures: list[str] = []
    with compute_dtype(np.float32):
        annotator.annotate_batch(texts[:8])  # warm the payload cache
        serial_seconds, serial_out = _measure(
            lambda: annotator.annotate_batch(texts), args.repeat
        )
        with AnnotatorPool.from_annotator(annotator, args.workers) as pool:
            if pool.serial:
                print("warning: pool fell back to serial mode", file=sys.stderr)
                return 1
            pool.annotate_batch(texts[:8])  # per-worker warmup round
            pool_seconds, pool_out = _measure(
                lambda: pool.annotate_batch(texts), args.repeat
            )
            _assert_identical(serial_out, pool_out)
            print("outputs: byte-identical to serial")

            manifest = pool._store.manifest
            pids = [p.pid for p in pool._procs if p is not None and p.is_alive()]
            private = _shm_private_bytes(pids, manifest.block_name)
            per_worker = private / max(1, len(pids))
            payload = manifest.total_bytes
            print(
                f"shm payload {payload / 1e6:.2f} MB; private copies "
                f"{per_worker / 1e6:.3f} MB/worker "
                f"({per_worker / payload:.1%} of payload)"
            )
            if per_worker >= 0.25 * payload:
                failures.append(
                    f"shm overhead {per_worker / payload:.1%} per worker "
                    "exceeds the 25% sharing budget"
                )

    speedup = serial_seconds / pool_seconds
    docs_per_sec_serial = len(texts) / serial_seconds
    docs_per_sec_pool = len(texts) / pool_seconds
    print(f"serial: {serial_seconds:.3f}s ({docs_per_sec_serial:.1f} docs/s)")
    print(f"pool  : {pool_seconds:.3f}s ({docs_per_sec_pool:.1f} docs/s)")
    print(f"speedup: {speedup:.2f}x")

    if cores >= 4:
        if speedup < args.min_speedup:
            failures.append(
                f"speedup {speedup:.2f}x below the {args.min_speedup:.1f}x "
                f"floor on a {cores}-core machine"
            )
    else:
        print(
            f"warning: only {cores} usable core(s); the "
            f"{args.min_speedup:.1f}x floor is not enforced here",
            file=sys.stderr,
        )

    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        report = {
            "machine_info": {"usable_cores": cores},
            "benchmarks": [
                {
                    "name": "annotate_batch_serial",
                    "stats": {"mean": serial_seconds},
                },
                {
                    "name": f"annotate_batch_pool{args.workers}",
                    "stats": {"mean": pool_seconds},
                },
            ],
            "extra": {
                "documents": len(texts),
                "workers": args.workers,
                "speedup": speedup,
                "shm_payload_bytes": payload,
                "shm_private_bytes_per_worker": per_worker,
                "byte_identical": True,
            },
        }
        args.out.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {args.out}")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
