"""Figure 4 — error rate vs rare-entity proportion of a type/relation.

Paper shape: Bootleg's error stays lowest across all rare proportions;
the baseline (and Ent-only) error rates are higher and grow as the
rare proportion increases, especially over relations.
"""

import numpy as np
from conftest import run_once

from repro.experiments import figure4_series, render_figure4


def _weighted_error(rows):
    total = sum(n for _, _, n in rows)
    return sum(err * n for _, err, n in rows) / total if total else 0.0


def test_figure4(benchmark, wiki_ws, emit):
    series = run_once(benchmark, lambda: figure4_series(wiki_ws))
    emit("figure4", render_figure4(series))

    for group in ("type", "relation"):
        boot = _weighted_error(series["bootleg"][group])
        base = _weighted_error(series["ned_base"][group])
        ent = _weighted_error(series["ent_only"][group])
        assert boot < base, group
        assert boot < ent, group
    # The baseline degrades toward rare-heavy groups: its error in the
    # rarest populated bin exceeds its error in the most popular bin.
    base_type = series["ned_base"]["type"]
    if len(base_type) >= 2:
        assert base_type[-1][1] >= base_type[0][1] - 0.05
