"""Extension: MLM-pretrained frozen encoder (the paper's BERT protocol).

The paper freezes a *pretrained* BERT inside Bootleg (B.2) while our
default configuration trains MiniBERT jointly. This bench implements
the paper's protocol end to end — masked-language-model pretraining of
MiniBERT on the training corpus, then freezing it inside Bootleg — and
compares three encoder regimes: joint training (our default), frozen
random, and frozen pretrained.

Measured shape (and what it says about the substitution): *both* frozen
regimes cost ~20 F1 versus joint training, and MLM pretraining does not
close the gap — because Bootleg's trainable Phrase2Ent projections can
extract token identity from *any* fixed distinct token features, random
or pretrained. The benefit the paper gets from frozen BERT comes from
transfer at a scale (3B-word pretraining) that a 2-layer MiniBERT over
a synthetic vocabulary cannot emulate; this is exactly why the default
configuration of this reproduction trains the encoder jointly
(DESIGN.md's substitution table).
"""

import dataclasses

from conftest import run_once

from repro.core import BootlegConfig, BootlegModel, TrainConfig, Trainer, predict
from repro.eval import f1_by_bucket
from repro.text import PretrainConfig, pretrain_mlm
from repro.utils.tables import format_table


def run_encoder_regimes(micro_ws):
    results = {}
    train_config = dataclasses.replace(micro_ws.config.train)
    for regime in ("joint", "frozen_random", "frozen_pretrained"):
        config = BootlegConfig(
            num_candidates=micro_ws.config.num_candidates,
            freeze_encoder=regime != "joint",
        )
        model = BootlegModel(
            config,
            micro_ws.world.kb,
            micro_ws.vocab,
            entity_counts=micro_ws.counts.counts,
        )
        if regime == "frozen_pretrained":
            model.encoder.unfreeze()
            pretrain_mlm(
                model.encoder,
                micro_ws.corpus,
                micro_ws.vocab,
                PretrainConfig(epochs=3, batch_size=64, learning_rate=3e-3),
            )
            model.encoder.freeze()
        Trainer(model, micro_ws.dataset("train"), train_config).train()
        predictions = predict(model, micro_ws.dataset("val"))
        results[regime] = f1_by_bucket(predictions, micro_ws.counts)
    return results


def test_encoder_pretraining(benchmark, micro_ws, emit):
    results = run_once(benchmark, lambda: run_encoder_regimes(micro_ws))
    rows = [
        [name, values["all"], values["tail"], values["unseen"]]
        for name, values in results.items()
    ]
    emit(
        "extension_pretrain",
        format_table(
            ["Encoder regime", "All", "Tail", "Unseen"],
            rows,
            title="Extension — encoder regimes (joint vs frozen vs pretrained+frozen)",
        ),
    )

    joint = results["joint"]["all"]
    random_frozen = results["frozen_random"]["all"]
    pretrained = results["frozen_pretrained"]["all"]
    # Joint training clearly beats any frozen encoder at this scale —
    # the justification for the reproduction's default configuration.
    assert joint > random_frozen + 10
    assert joint > pretrained + 10
    # The two frozen regimes are equivalent within noise (the trainable
    # attention extracts token identity from either).
    assert abs(pretrained - random_frozen) < 12
    # Frozen models still clear the popularity-prior floor: the
    # structural pathways remain intact.
    assert min(pretrained, random_frozen) > 35
