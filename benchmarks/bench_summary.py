"""Consolidate per-suite bench JSONs into one ``BENCH_summary.json``.

Usage::

    python benchmarks/bench_summary.py [--results-dir benchmarks/results] \
        [--out benchmarks/results/BENCH_summary.json]

Each ``BENCH_*.json`` produced by a bench suite (``make bench-parallel``
/ ``bench-store`` / ``bench-cascade`` / ``bench-core``) follows the
pytest-benchmark shape — ``{"benchmarks": [{"name", "stats": {"mean"},
"higher_is_better"?}]}`` plus a free-form ``"extra"`` block. This script
flattens the headline numbers of every suite present into a single
document::

    {
      "suites": {
        "cascade": {
          "source": "BENCH_cascade.json",
          "metrics": {
            "annotate_batch_cascade": {"mean": 0.011, "higher_is_better": false},
            "cascade_speedup":        {"mean": 7.61,  "higher_is_better": true}
          },
          "extra": {...}
        },
        ...
      },
      "num_suites": <int>
    }

so dashboards and CI annotations read one file instead of globbing.
Suites that were never run are simply absent — the summary reports what
exists, it does not fail on gaps (but prints the skipped files so a
truncated run is visible).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def summarize_file(path: Path) -> dict | None:
    """Headline metrics of one suite JSON, or None when unreadable."""
    try:
        data = json.loads(path.read_text())
    except (OSError, ValueError) as error:
        print(f"skipping {path.name}: {error}", file=sys.stderr)
        return None
    metrics = {
        bench["name"]: {
            "mean": bench["stats"]["mean"],
            "higher_is_better": bool(bench.get("higher_is_better", False)),
        }
        for bench in data.get("benchmarks", [])
        if "name" in bench and "mean" in bench.get("stats", {})
    }
    if not metrics:
        print(f"skipping {path.name}: no benchmark entries", file=sys.stderr)
        return None
    summary = {"source": path.name, "metrics": metrics}
    if isinstance(data.get("extra"), dict):
        summary["extra"] = data["extra"]
    return summary


def build_summary(results_dir: Path) -> dict:
    suites: dict[str, dict] = {}
    for path in sorted(results_dir.glob("BENCH_*.json")):
        if path.name == "BENCH_summary.json":
            continue
        suite = path.stem[len("BENCH_"):]
        summarized = summarize_file(path)
        if summarized is not None:
            suites[suite] = summarized
    return {"suites": suites, "num_suites": len(suites)}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--results-dir", type=Path, default=Path("benchmarks/results"),
        help="directory holding the per-suite BENCH_*.json files",
    )
    parser.add_argument(
        "--out", type=Path, default=None,
        help="output path (default: <results-dir>/BENCH_summary.json)",
    )
    args = parser.parse_args(argv)
    out = args.out or args.results_dir / "BENCH_summary.json"
    summary = build_summary(args.results_dir)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(summary, indent=2) + "\n")
    names = ", ".join(sorted(summary["suites"])) or "none"
    print(f"{summary['num_suites']} suite(s) summarized ({names}) -> {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
